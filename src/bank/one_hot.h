// 1-hot bank-select encoding (paper Fig. 1b).
//
// The decoder turns the p MSBs of the index into a 2^p-bit 1-hot select
// word: bank 0 -> 0...01, bank M-1 -> 10...0.  The paper's point is that
// this costs a single gate level per minterm, so the performance overhead
// of partitioning is negligible; we model it functionally and charge its
// (tiny) energy in the power model.
#pragma once

#include <cstdint>

#include "util/bitops.h"
#include "util/error.h"

namespace pcal {

/// Encodes bank `b` of `num_banks` as a 1-hot mask.
inline std::uint64_t one_hot_encode(std::uint64_t bank,
                                    std::uint64_t num_banks) {
  PCAL_ASSERT_MSG(is_pow2(num_banks) && num_banks <= 64,
                  "1-hot encoder supports up to 64 banks");
  PCAL_ASSERT_MSG(bank < num_banks,
                  "bank " << bank << " out of range " << num_banks);
  return std::uint64_t{1} << bank;
}

/// Decodes a 1-hot mask back to a bank number.  Throws if the mask is not
/// exactly 1-hot (hardware would flag this as a fault).
inline std::uint64_t one_hot_decode(std::uint64_t mask,
                                    std::uint64_t num_banks) {
  PCAL_ASSERT_MSG(popcount64(mask) == 1, "select mask is not 1-hot");
  const auto bank = static_cast<std::uint64_t>(log2_exact(mask));
  PCAL_ASSERT(bank < num_banks);
  return bank;
}

/// True iff the mask is a valid 1-hot select for `num_banks` banks.
inline bool is_one_hot(std::uint64_t mask, std::uint64_t num_banks) {
  return popcount64(mask) == 1 &&
         (num_banks >= 64 || mask <= low_mask(static_cast<unsigned>(num_banks)));
}

}  // namespace pcal
