// Fine-grain (per-line) power management with full-index dynamic indexing.
//
// This is the architecture of the paper's reference [7] ("Dynamic
// Indexing: Concurrent Leakage and Aging Optimization for Caches"), which
// the DATE'11 paper coarsens to bank granularity.  Each cache *line* is an
// independently power-managed unit with its own breakeven counter, and the
// time-varying indexing rotates the entire n-bit index, not just its p
// MSBs.  It is the aging-optimal design — idleness is harvested and
// balanced at the finest possible grain — but it requires modifying the
// SRAM array internals (per-line sleep transistors and control), which is
// exactly what the DATE'11 paper's bank-level scheme avoids.  We implement
// it as the upper-bound baseline for the granularity-comparison bench.
#pragma once

#include <cstdint>
#include <memory>

#include "bank/block_control.h"
#include "cache/cache.h"
#include "core/managed_cache.h"
#include "indexing/index_policy.h"
#include "util/lfsr.h"

namespace pcal {

struct LineManagedConfig {
  CacheConfig cache;
  /// Full-index rotation scheme.  kProbing adds a counter to the whole
  /// index (mod L); kScrambling XORs it with an n-bit LFSR pattern;
  /// kStatic disables rotation (plain per-line power management).
  IndexingKind indexing = IndexingKind::kProbing;
  std::uint64_t indexing_seed = 1;
  /// Idle cycles before one line enters the drowsy state.  Per-line
  /// transition energy is tiny, so this is comparable to the bank-level
  /// breakeven despite the much smaller unit.
  std::uint64_t breakeven_cycles = 28;
  /// Idle cycles past which a sleeping line has power-gated (0 means
  /// "== breakeven_cycles": every wakeup is a gated wakeup).
  std::uint64_t gate_cycles = 0;
  /// Event costs in stall cycles (all-zero = the idealized clock).
  LatencyParams latency;

  void validate() const { cache.validate(); }
};

struct LineAccessOutcome {
  bool hit = false;
  bool writeback = false;
  std::uint64_t logical_set = 0;
  std::uint64_t physical_set = 0;
  bool woke_line = false;
  /// Wake depth and stall of this event (core/timing.h).
  WakeDepth wake = WakeDepth::kAwake;
  std::uint64_t stall_cycles = 0;
  /// A valid line was evicted; its line-aligned address.
  bool evicted = false;
  std::uint64_t victim_address = 0;
};

class LineManagedCache : public ManagedCache {
 public:
  explicit LineManagedCache(const LineManagedConfig& config);

  /// Native entry point (hides ManagedCache::access, which forwards here).
  LineAccessOutcome access(std::uint64_t address, bool is_write);

  /// Advances the full-index rotation and flushes.  Returns dirty lines.
  std::uint64_t update_indexing() override;

  /// Advances time with no access (every line idles those cycles).
  void advance_idle(std::uint64_t cycles) override;

  void finish() override;

  const LineManagedConfig& config() const { return config_; }
  const CacheModel& cache() const { return cache_; }
  const BlockControl& line_control() const { return control_; }
  std::uint64_t cycles() const override { return cycle_; }
  std::uint64_t num_units() const override { return num_sets_; }

  /// Sleep residency of one physical line over the simulated time.
  /// (avg/min_residency come from the ManagedCache defaults.)
  double line_residency(std::uint64_t line) const;

  // ManagedCache (units are lines):
  double unit_residency(std::uint64_t unit) const override {
    return line_residency(unit);
  }
  const CacheStats& stats() const override { return cache_.stats(); }
  std::uint64_t indexing_updates() const override { return updates_; }
  UnitActivity unit_activity(std::uint64_t unit) const override;
  const IntervalAccumulator& unit_intervals(
      std::uint64_t unit) const override {
    PCAL_ASSERT_MSG(finished_, "call finish() first");
    return control_.intervals(unit);
  }
  UnitPowerState unit_state(std::uint64_t unit) const override {
    return unit_state_from(control_, unit, cycle_, gate_cycles_);
  }

  bool invalidate_line(std::uint64_t address) override;

 private:
  AccessOutcome do_access(std::uint64_t address, bool is_write) override;
  AccessOutcome do_probe(std::uint64_t address) override;
  std::uint64_t do_access_batch(const MemAccess* accesses, std::size_t n,
                                AccessOutcome* out) override;
  LineAccessOutcome run_access(std::uint64_t address, bool is_write,
                               bool allocate);

  std::uint64_t map_set(std::uint64_t logical_set) const;

  LineManagedConfig config_;
  CacheModel cache_;
  std::uint64_t num_sets_;
  std::uint64_t gate_cycles_;  // resolved: 0-sentinel -> breakeven
  // Full-index rotation state: a counter for probing, an LFSR pattern for
  // scrambling (reusing IndexingPolicy with M = num_sets would demand
  // pow-2 <= 16 banks; lines need the general form, so the small state
  // machine lives here).
  std::uint64_t rotation_ = 0;
  std::unique_ptr<GaloisLfsr> lfsr_;
  std::uint64_t xor_pattern_ = 0;
  std::uint64_t updates_ = 0;
  BlockControl control_;
  std::uint64_t cycle_ = 0;
  bool finished_ = false;
};

}  // namespace pcal
