#include "bank/line_managed_cache.h"

#include <algorithm>

#include "util/lfsr.h"

namespace pcal {

LineManagedCache::LineManagedCache(const LineManagedConfig& config)
    : config_(config),
      cache_(config.cache),
      num_sets_(config.cache.num_sets()),
      control_(config.cache.num_sets(), config.breakeven_cycles) {
  config_.validate();
  if (config_.indexing == IndexingKind::kScrambling) {
    const unsigned width =
        std::min(24u, config_.cache.index_bits() + 8u);
    lfsr_ = std::make_unique<GaloisLfsr>(width, config_.indexing_seed);
  }
}

std::uint64_t LineManagedCache::map_set(std::uint64_t logical_set) const {
  switch (config_.indexing) {
    case IndexingKind::kStatic:
      return logical_set;
    case IndexingKind::kProbing:
      return (logical_set + rotation_) & (num_sets_ - 1);
    case IndexingKind::kScrambling:
      return (logical_set ^ xor_pattern_) & (num_sets_ - 1);
  }
  return logical_set;
}

LineAccessOutcome LineManagedCache::access(std::uint64_t address,
                                           bool is_write) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  LineAccessOutcome out;
  out.logical_set = config_.cache.set_index_of(address);
  out.physical_set = map_set(out.logical_set);
  out.woke_line = control_.is_sleeping(out.physical_set, cycle_);
  const CacheAccessResult r =
      cache_.access(config_.cache.tag_of(address), out.physical_set,
                    is_write);
  out.hit = r.hit;
  out.writeback = r.writeback;
  control_.on_access(out.physical_set, cycle_);
  ++cycle_;
  return out;
}

std::uint64_t LineManagedCache::update_indexing() {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  switch (config_.indexing) {
    case IndexingKind::kStatic:
      break;
    case IndexingKind::kProbing:
      rotation_ = (rotation_ + 1) & (num_sets_ - 1);
      break;
    case IndexingKind::kScrambling:
      xor_pattern_ = lfsr_->step() & (num_sets_ - 1);
      break;
  }
  ++updates_;
  return cache_.flush();
}

void LineManagedCache::advance_idle(std::uint64_t cycles) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  cycle_ += cycles;
}

void LineManagedCache::finish() {
  if (finished_) return;
  control_.finish(cycle_);
  finished_ = true;
}

double LineManagedCache::line_residency(std::uint64_t line) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return control_.sleep_residency(line, cycle_);
}

AccessOutcome LineManagedCache::do_access(std::uint64_t address,
                                          bool is_write) {
  const LineAccessOutcome l = access(address, is_write);
  AccessOutcome out;
  out.hit = l.hit;
  out.writeback = l.writeback;
  out.logical_unit = l.logical_set;
  out.physical_unit = l.physical_set;
  out.woke_unit = l.woke_line;
  return out;
}

UnitActivity LineManagedCache::unit_activity(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return unit_activity_from(control_, unit);
}

}  // namespace pcal
