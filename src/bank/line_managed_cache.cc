#include "bank/line_managed_cache.h"

#include <algorithm>

#include "util/lfsr.h"

namespace pcal {

LineManagedCache::LineManagedCache(const LineManagedConfig& config)
    : config_(config),
      cache_(config.cache),
      num_sets_(config.cache.num_sets()),
      gate_cycles_(config.gate_cycles != 0 ? config.gate_cycles
                                           : config.breakeven_cycles),
      control_(config.cache.num_sets(), config.breakeven_cycles) {
  config_.validate();
  if (config_.indexing == IndexingKind::kScrambling) {
    const unsigned width =
        std::min(24u, config_.cache.index_bits() + 8u);
    lfsr_ = std::make_unique<GaloisLfsr>(width, config_.indexing_seed);
  }
}

std::uint64_t LineManagedCache::map_set(std::uint64_t logical_set) const {
  switch (config_.indexing) {
    case IndexingKind::kStatic:
      return logical_set;
    case IndexingKind::kProbing:
      return (logical_set + rotation_) & (num_sets_ - 1);
    case IndexingKind::kScrambling:
      return (logical_set ^ xor_pattern_) & (num_sets_ - 1);
  }
  return logical_set;
}

LineAccessOutcome LineManagedCache::access(std::uint64_t address,
                                           bool is_write) {
  return run_access(address, is_write, /*allocate=*/true);
}

LineAccessOutcome LineManagedCache::run_access(std::uint64_t address,
                                               bool is_write,
                                               bool allocate) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  LineAccessOutcome out;
  out.logical_set = config_.cache.set_index_of(address);
  out.physical_set = map_set(out.logical_set);
  out.woke_line = control_.is_sleeping(out.physical_set, cycle_);
  out.wake = classify_wake(out.woke_line,
                           control_.idle_gap(out.physical_set, cycle_),
                           gate_cycles_);
  const std::uint64_t tag = config_.cache.tag_of(address);
  const CacheAccessResult r =
      allocate ? cache_.access(tag, out.physical_set, is_write, address)
               : cache_.probe(tag, out.physical_set);
  out.hit = r.hit;
  out.writeback = r.writeback;
  out.evicted = r.evicted;
  out.victim_address = r.victim_address;
  out.stall_cycles = config_.latency.event_stall(r.hit, out.wake);
  control_.on_access(out.physical_set, cycle_);
  ++cycle_;
  return out;
}

AccessOutcome LineManagedCache::do_probe(std::uint64_t address) {
  const LineAccessOutcome l =
      run_access(address, /*is_write=*/false, /*allocate=*/false);
  AccessOutcome out;
  out.hit = l.hit;
  out.logical_unit = l.logical_set;
  out.physical_unit = l.physical_set;
  out.woke_unit = l.woke_line;
  out.wake = l.wake;
  out.stall_cycles = l.stall_cycles;
  return out;
}

bool LineManagedCache::invalidate_line(std::uint64_t address) {
  // Same full-index mapping as an access, pure tag-store drop.
  const std::uint64_t set =
      map_set(config_.cache.set_index_of(address));
  return cache_.invalidate(config_.cache.tag_of(address), set);
}

std::uint64_t LineManagedCache::update_indexing() {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  switch (config_.indexing) {
    case IndexingKind::kStatic:
      break;
    case IndexingKind::kProbing:
      rotation_ = (rotation_ + 1) & (num_sets_ - 1);
      break;
    case IndexingKind::kScrambling:
      xor_pattern_ = lfsr_->step() & (num_sets_ - 1);
      break;
  }
  ++updates_;
  return cache_.flush();
}

void LineManagedCache::advance_idle(std::uint64_t cycles) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  cycle_ += cycles;
}

void LineManagedCache::finish() {
  if (finished_) return;
  control_.finish(cycle_);
  finished_ = true;
}

double LineManagedCache::line_residency(std::uint64_t line) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return control_.sleep_residency(line, cycle_);
}

AccessOutcome LineManagedCache::do_access(std::uint64_t address,
                                          bool is_write) {
  const LineAccessOutcome l = access(address, is_write);
  AccessOutcome out;
  out.hit = l.hit;
  out.writeback = l.writeback;
  out.logical_unit = l.logical_set;
  out.physical_unit = l.physical_set;
  out.woke_unit = l.woke_line;
  out.wake = l.wake;
  out.stall_cycles = l.stall_cycles;
  out.evicted = l.evicted;
  out.victim_address = l.victim_address;
  return out;
}

UnitActivity LineManagedCache::unit_activity(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return unit_activity_from(control_, unit);
}

}  // namespace pcal
