#include "bank/line_managed_cache.h"

#include <algorithm>

#include "util/lfsr.h"

namespace pcal {

LineManagedCache::LineManagedCache(const LineManagedConfig& config)
    : config_(config),
      cache_(config.cache),
      num_sets_(config.cache.num_sets()),
      gate_cycles_(config.gate_cycles != 0 ? config.gate_cycles
                                           : config.breakeven_cycles),
      control_(config.cache.num_sets(), config.breakeven_cycles) {
  config_.validate();
  if (config_.indexing == IndexingKind::kScrambling) {
    const unsigned width =
        std::min(24u, config_.cache.index_bits() + 8u);
    lfsr_ = std::make_unique<GaloisLfsr>(width, config_.indexing_seed);
  }
}

std::uint64_t LineManagedCache::map_set(std::uint64_t logical_set) const {
  switch (config_.indexing) {
    case IndexingKind::kStatic:
      return logical_set;
    case IndexingKind::kProbing:
      return (logical_set + rotation_) & (num_sets_ - 1);
    case IndexingKind::kScrambling:
      return (logical_set ^ xor_pattern_) & (num_sets_ - 1);
  }
  return logical_set;
}

LineAccessOutcome LineManagedCache::access(std::uint64_t address,
                                           bool is_write) {
  return run_access(address, is_write, /*allocate=*/true);
}

LineAccessOutcome LineManagedCache::run_access(std::uint64_t address,
                                               bool is_write,
                                               bool allocate) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  LineAccessOutcome out;
  out.logical_set = config_.cache.set_index_of(address);
  out.physical_set = map_set(out.logical_set);
  out.woke_line = control_.is_sleeping(out.physical_set, cycle_);
  out.wake = classify_wake(out.woke_line,
                           control_.idle_gap(out.physical_set, cycle_),
                           gate_cycles_);
  const std::uint64_t tag = config_.cache.tag_of(address);
  const CacheAccessResult r =
      allocate ? cache_.access(tag, out.physical_set, is_write, address)
               : cache_.probe(tag, out.physical_set);
  out.hit = r.hit;
  out.writeback = r.writeback;
  out.evicted = r.evicted;
  out.victim_address = r.victim_address;
  out.stall_cycles = config_.latency.event_stall(r.hit, out.wake);
  control_.on_access(out.physical_set, cycle_);
  ++cycle_;
  return out;
}

AccessOutcome LineManagedCache::do_probe(std::uint64_t address) {
  const LineAccessOutcome l =
      run_access(address, /*is_write=*/false, /*allocate=*/false);
  AccessOutcome out;
  out.hit = l.hit;
  out.logical_unit = l.logical_set;
  out.physical_unit = l.physical_set;
  out.woke_unit = l.woke_line;
  out.wake = l.wake;
  out.stall_cycles = l.stall_cycles;
  return out;
}

bool LineManagedCache::invalidate_line(std::uint64_t address) {
  // Same full-index mapping as an access, pure tag-store drop.
  const std::uint64_t set =
      map_set(config_.cache.set_index_of(address));
  return cache_.invalidate(config_.cache.tag_of(address), set);
}

std::uint64_t LineManagedCache::update_indexing() {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  switch (config_.indexing) {
    case IndexingKind::kStatic:
      break;
    case IndexingKind::kProbing:
      rotation_ = (rotation_ + 1) & (num_sets_ - 1);
      break;
    case IndexingKind::kScrambling:
      xor_pattern_ = lfsr_->step() & (num_sets_ - 1);
      break;
  }
  ++updates_;
  return cache_.flush();
}

void LineManagedCache::advance_idle(std::uint64_t cycles) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  cycle_ += cycles;
}

void LineManagedCache::finish() {
  if (finished_) return;
  control_.finish(cycle_);
  finished_ = true;
}

double LineManagedCache::line_residency(std::uint64_t line) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return control_.sleep_residency(line, cycle_);
}

AccessOutcome LineManagedCache::do_access(std::uint64_t address,
                                          bool is_write) {
  const LineAccessOutcome l = access(address, is_write);
  AccessOutcome out;
  out.hit = l.hit;
  out.writeback = l.writeback;
  out.logical_unit = l.logical_set;
  out.physical_unit = l.physical_set;
  out.woke_unit = l.woke_line;
  out.wake = l.wake;
  out.stall_cycles = l.stall_cycles;
  out.evicted = l.evicted;
  out.victim_address = l.victim_address;
  return out;
}

// Batched hot loop: logical set, physical set (the full-index mapping is
// constant within a batch — rotation only moves on update_indexing())
// and tag are precomputed per chunk, then power bookkeeping runs before
// the tag-store touch per element, matching the scalar path's order
// (wake classification at the pre-access cycle).  One invariant check
// per batch; stalls self-advance the clock; bit-identical statistics.
std::uint64_t LineManagedCache::do_access_batch(const MemAccess* accesses,
                                                std::size_t n,
                                                AccessOutcome* out) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  constexpr std::size_t kChunk = 256;
  std::uint64_t tags[kChunk];
  std::uint64_t logical[kChunk];
  std::uint64_t physical[kChunk];
  const std::uint64_t breakeven = control_.breakeven_cycles();
  std::uint64_t stalls = 0;
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t address = accesses[base + j].address;
      tags[j] = config_.cache.tag_of(address);
      logical[j] = config_.cache.set_index_of(address);
      physical[j] = map_set(logical[j]);
    }
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t address = accesses[base + j].address;
      const bool is_write = accesses[base + j].kind == AccessKind::kWrite;
      AccessOutcome& o = out[base + j];
      const std::uint64_t line = physical[j];
      const std::uint64_t nf = control_.next_free(line);
      const std::uint64_t gap = cycle_ >= nf ? cycle_ - nf : 0;
      o.woke_unit = cycle_ >= nf && gap >= breakeven;
      o.wake = classify_wake(o.woke_unit, gap, gate_cycles_);
      const CacheAccessResult r =
          cache_.access(tags[j], line, is_write, address);
      o.hit = r.hit;
      o.writeback = r.writeback;
      o.evicted = r.evicted;
      o.victim_address = r.victim_address;
      o.logical_unit = logical[j];
      o.physical_unit = line;
      o.stall_cycles = config_.latency.event_stall(r.hit, o.wake);
      o.num_events = 0;
      o.add_event(0, r.hit, r.writeback, line, address);
      control_.record_access(line, cycle_);
      cycle_ += 1 + o.stall_cycles;
      stalls += o.stall_cycles;
    }
  }
  return stalls;
}

UnitActivity LineManagedCache::unit_activity(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return unit_activity_from(control_, unit);
}

}  // namespace pcal
