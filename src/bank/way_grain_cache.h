// Way-grain power management: per-way sleep within each bank.
//
// The paper's banked scheme gates whole banks; its reference [7] gates
// single lines.  Way-grain sits between them for set-associative caches:
// each of a bank's W way-columns is an independently power-managed unit
// (M x W units total), so a working set that fits in a fraction of the
// associativity lets the remaining way-columns sleep without touching the
// SRAM array internals the way per-line control must.  Bank selection and
// re-indexing are identical to BankedCache (p-MSB decode through the
// time-varying f()); the way within the set is whatever way the tag store
// touches (the hitting way, or the LRU victim on a miss).
//
// Degeneracy: with a direct-mapped cache (W = 1) every set has one way,
// so unit == physical bank and this backend reproduces BankedCache bit
// for bit — pinned by tests/way_grain_test.cc.
#pragma once

#include <cstdint>

#include "bank/block_control.h"
#include "bank/decoder.h"
#include "cache/cache.h"
#include "core/managed_cache.h"

namespace pcal {

class WayGrainCache final : public ManagedCache {
 public:
  explicit WayGrainCache(const CacheTopology& topology);

  // ManagedCache (units are (physical bank, way) pairs, numbered
  // bank * W + way):
  std::uint64_t update_indexing() override;
  void advance_idle(std::uint64_t cycles) override;
  void finish() override;
  std::uint64_t cycles() const override { return cycle_; }
  std::uint64_t num_units() const override {
    return num_banks_ * ways_;
  }
  double unit_residency(std::uint64_t unit) const override;
  const CacheStats& stats() const override { return cache_.stats(); }
  std::uint64_t indexing_updates() const override {
    return decoder_.policy().updates();
  }
  UnitActivity unit_activity(std::uint64_t unit) const override;
  const IntervalAccumulator& unit_intervals(
      std::uint64_t unit) const override {
    PCAL_ASSERT_MSG(finished_, "call finish() first");
    return control_.intervals(unit);
  }
  UnitPowerState unit_state(std::uint64_t unit) const override {
    return unit_state_from(control_, unit, cycle_, gate_cycles_);
  }

  bool set_alloc_way_mask(std::uint64_t mask) override {
    cache_.set_alloc_way_mask(mask);
    return true;
  }

  bool invalidate_line(std::uint64_t address) override;

  // ---- component access ----
  const CacheModel& cache() const { return cache_; }
  const BankDecoder& decoder() const { return decoder_; }
  const BlockControl& way_control() const { return control_; }
  std::uint64_t ways() const { return ways_; }

 private:
  AccessOutcome do_access(std::uint64_t address, bool is_write) override;
  AccessOutcome do_probe(std::uint64_t address) override;
  std::uint64_t do_access_batch(const MemAccess* accesses, std::size_t n,
                                AccessOutcome* out) override;
  AccessOutcome run_access(std::uint64_t address, bool is_write,
                           bool allocate);

  CacheConfig config_;
  CacheModel cache_;
  BankDecoder decoder_;
  std::uint64_t num_banks_;
  std::uint64_t ways_;
  BlockControl control_;
  LatencyParams latency_;
  std::uint64_t gate_cycles_;
  std::uint64_t cycle_ = 0;
  bool finished_ = false;
};

}  // namespace pcal
