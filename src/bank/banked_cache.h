// The M-block uniformly partitioned cache (paper Fig. 1 + Fig. 2).
//
// Composition of the standard pieces: a behavioural cache (tag store), the
// bank decoder with its time-varying indexing f(), and Block Control
// idleness tracking.  One access is consumed per cycle.  Firing
// update_indexing() advances f() and flushes the cache, exactly as the
// paper requires ("every time the indexing is updated the entire cache
// content becomes unusable and a cache flush is required") — in deployment
// the update piggybacks on flushes that happen anyway (context switches).
#pragma once

#include <cstdint>
#include <memory>

#include "bank/block_control.h"
#include "bank/decoder.h"
#include "cache/cache.h"
#include "core/managed_cache.h"

namespace pcal {

struct BankedCacheConfig {
  CacheConfig cache;
  PartitionConfig partition;
  IndexingKind indexing = IndexingKind::kProbing;
  std::uint64_t indexing_seed = 1;
  /// Idle cycles before a bank enters the drowsy state.  Normally computed
  /// from the power model (power::breakeven_cycles); a plain number here
  /// keeps src/bank independent of src/power.
  std::uint64_t breakeven_cycles = 32;
  /// Idle cycles past which a sleeping bank has power-gated (wakeups from
  /// deeper sleep stall longer).  0 means "== breakeven_cycles": every
  /// wakeup is a gated wakeup, the pure-gated-policy semantics.
  std::uint64_t gate_cycles = 0;
  /// Event costs in stall cycles (all-zero = the idealized clock).
  LatencyParams latency;

  void validate() const {
    cache.validate();
    partition.validate(cache);
  }
};

struct BankedAccessOutcome {
  bool hit = false;
  bool writeback = false;
  std::uint64_t logical_bank = 0;
  std::uint64_t physical_bank = 0;
  /// True if this access had to wake the bank from retention (it was
  /// sleeping in the previous cycle) — costs a transition.
  bool woke_bank = false;
  /// How deep the bank was sleeping, and what the event stalls beyond
  /// its base cycle (see core/timing.h).
  WakeDepth wake = WakeDepth::kAwake;
  std::uint64_t stall_cycles = 0;
  /// A valid line was evicted; its line-aligned address.
  bool evicted = false;
  std::uint64_t victim_address = 0;
};

class BankedCache : public ManagedCache {
 public:
  explicit BankedCache(const BankedCacheConfig& config);

  /// Simulates one access at the next cycle.  Returns the outcome.
  /// (Native entry point; hides ManagedCache::access, which forwards here
  /// and converts the outcome to the unified struct.)
  BankedAccessOutcome access(std::uint64_t address, bool is_write);

  /// Fires the update signal: advances f() and flushes the cache.
  /// Returns the number of dirty lines the flush wrote back.
  std::uint64_t update_indexing() override;

  /// Advances time with no access (every bank idles those cycles).
  void advance_idle(std::uint64_t cycles) override;

  /// Finalizes idle-interval bookkeeping; call when the trace ends.
  void finish() override;

  // ---- component access ----
  const BankedCacheConfig& config() const { return config_; }
  const CacheModel& cache() const { return cache_; }
  const BankDecoder& decoder() const { return decoder_; }
  const BlockControl& block_control() const { return block_control_; }
  const IndexingPolicy& policy() const { return decoder_.policy(); }

  /// Cycles simulated so far (== accesses consumed).
  std::uint64_t cycles() const override { return cycle_; }
  std::uint64_t indexing_updates() const override {
    return policy().updates();
  }

  /// Sleep residency of a physical bank over the whole simulated time.
  double bank_residency(std::uint64_t bank) const;

  // ManagedCache (units are banks):
  std::uint64_t num_units() const override {
    return config_.partition.num_banks;
  }
  double unit_residency(std::uint64_t unit) const override {
    return bank_residency(unit);
  }
  const CacheStats& stats() const override { return cache_.stats(); }
  UnitActivity unit_activity(std::uint64_t unit) const override;
  const IntervalAccumulator& unit_intervals(
      std::uint64_t unit) const override {
    PCAL_ASSERT_MSG(finished_, "call finish() first");
    return block_control_.intervals(unit);
  }
  UnitPowerState unit_state(std::uint64_t unit) const override {
    return unit_state_from(block_control_, unit, cycle_, gate_cycles_);
  }
  bool set_alloc_way_mask(std::uint64_t mask) override {
    cache_.set_alloc_way_mask(mask);
    return true;
  }
  bool invalidate_line(std::uint64_t address) override;

 private:
  AccessOutcome do_access(std::uint64_t address, bool is_write) override;
  AccessOutcome do_probe(std::uint64_t address) override;
  std::uint64_t do_access_batch(const MemAccess* accesses, std::size_t n,
                                AccessOutcome* out) override;
  BankedAccessOutcome run_access(std::uint64_t address, bool is_write,
                                 bool allocate);

  BankedCacheConfig config_;
  CacheModel cache_;
  BankDecoder decoder_;
  BlockControl block_control_;
  std::uint64_t gate_cycles_;  // resolved: 0-sentinel -> breakeven
  std::uint64_t cycle_ = 0;
  bool finished_ = false;
};

}  // namespace pcal
