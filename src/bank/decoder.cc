#include "bank/decoder.h"

namespace pcal {

BankDecoder::BankDecoder(const CacheConfig& cache,
                         const PartitionConfig& partition,
                         std::unique_ptr<IndexingPolicy> policy)
    : index_bits_(cache.index_bits()),
      bank_bits_(partition.bank_bits()),
      num_banks_(partition.num_banks),
      policy_(std::move(policy)) {
  cache.validate();
  partition.validate(cache);
  PCAL_CONFIG_CHECK(policy_ != nullptr, "decoder needs an indexing policy");
  PCAL_CONFIG_CHECK(policy_->num_banks() == num_banks_,
                    "indexing policy bank count " << policy_->num_banks()
                                                  << " != partition "
                                                  << num_banks_);
}

DecodedIndex BankDecoder::decode(std::uint64_t set_index) const {
  PCAL_ASSERT_MSG(set_index < (std::uint64_t{1} << index_bits_),
                  "set index out of range");
  DecodedIndex d;
  const unsigned line_bits = index_bits_ - bank_bits_;
  d.line = extract_bits(set_index, 0, line_bits);
  d.logical_bank = extract_bits(set_index, line_bits, bank_bits_);
  d.physical_bank = policy_->map_bank(d.logical_bank);
  PCAL_ASSERT(d.physical_bank < num_banks_);
  d.physical_set = (d.physical_bank << line_bits) | d.line;
  d.select_mask = one_hot_encode(d.physical_bank, num_banks_);
  return d;
}

}  // namespace pcal
