// Block Control: per-bank idleness detection (paper Fig. 1).
//
// Hardware view: one saturating counter per bank, incremented on every
// cycle the bank's 1-hot select line is 0, reset on access; when a counter
// saturates at the breakeven time, its terminal-count signal puts the bank
// into the low-power state, and the next access wakes it.
//
// Model view: with one access per cycle, a bank's behaviour is fully
// determined by the gaps between its accesses, so we track per-bank idle
// intervals in O(1) per access and derive sleep residency, sleep episodes
// (= Vdd transitions) and the paper's "useful idleness" metrics exactly.
// The SaturatingCounter below mirrors the hardware bit-level semantics and
// is cross-checked against the interval arithmetic in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/stats.h"

namespace pcal {

/// Bit-accurate model of one Block Control counter (5-6 bits in the paper).
class SaturatingCounter {
 public:
  explicit SaturatingCounter(std::uint64_t saturation)
      : saturation_(saturation) {
    PCAL_ASSERT(saturation > 0);
  }

  /// Clock edge: `accessed` is the bank's 1-hot select line this cycle.
  void tick(bool accessed) {
    if (accessed)
      value_ = 0;
    else if (value_ < saturation_)
      ++value_;
  }

  /// Terminal count: asserted when the counter has saturated.
  bool terminal() const { return value_ >= saturation_; }

  std::uint64_t value() const { return value_; }
  std::uint64_t saturation() const { return saturation_; }

 private:
  std::uint64_t saturation_;
  std::uint64_t value_ = 0;
};

/// Per-bank activity bookkeeping for the whole partitioned cache.
///
/// State is kept as flat struct-of-arrays columns (`next_free_[]`,
/// `accesses_[]`, `intervals_[]`), so the batched backend hot loops touch
/// contiguous memory; the per-bank query API below is a view over those
/// columns and is unchanged.
class BlockControl {
 public:
  /// `breakeven_cycles`: idle cycles before a bank is put to sleep.
  BlockControl(std::uint64_t num_banks, std::uint64_t breakeven_cycles);

  /// Records that `bank` is accessed at `cycle`.  Cycles must be
  /// non-decreasing; exactly one bank is accessed per cycle.
  void on_access(std::uint64_t bank, std::uint64_t cycle) {
    PCAL_ASSERT_MSG(!finished_, "BlockControl already finished");
    PCAL_ASSERT_MSG(bank < next_free_.size(), "bank out of range");
    PCAL_ASSERT_MSG(cycle >= last_cycle_, "cycles must be non-decreasing");
    PCAL_ASSERT_MSG(cycle >= next_free_[bank],
                    "bank accessed twice in one cycle");
    record_access(bank, cycle);
  }

  /// on_access without the per-access invariant checks: the batched hot
  /// path, where the caller asserts once per batch and its monotonically
  /// advancing cycle counter guarantees the invariants by construction.
  void record_access(std::uint64_t bank, std::uint64_t cycle) {
    last_cycle_ = cycle;
    intervals_[bank].add_interval(cycle - next_free_[bank]);
    next_free_[bank] = cycle + 1;
    ++accesses_[bank];
  }

  /// Closes the trailing idle intervals at the end of simulation
  /// (`end_cycle` = one past the last simulated cycle).  Must be called
  /// before reading the statistics.
  void finish(std::uint64_t end_cycle);

  /// True iff the bank would be in the low-power state at `cycle` (its
  /// idle counter has saturated).
  bool is_sleeping(std::uint64_t bank, std::uint64_t cycle) const {
    const std::uint64_t nf = at(bank);
    // Sleeping iff the bank has been idle for more than `breakeven_`
    // cycles: the counter starts at the first idle cycle (next_free) and
    // saturates after breakeven_ increments.
    return cycle >= nf && (cycle - nf) >= breakeven_;
  }

  /// Idle cycles the bank has accumulated by `cycle` since its last
  /// access (0 while it is still busy).  This is what lets the timing
  /// core classify a wakeup's depth: gap >= the gate threshold means the
  /// unit had already power-gated, a shorter gap means it was drowsy.
  std::uint64_t idle_gap(std::uint64_t bank, std::uint64_t cycle) const {
    const std::uint64_t nf = at(bank);
    return cycle >= nf ? cycle - nf : 0;
  }

  /// First cycle at which `bank` is free again (one past its last
  /// access) — the raw column behind is_sleeping/idle_gap, exposed so
  /// batched backends can derive gap, wake depth and sleep state from
  /// one subtraction.  No bounds check.
  std::uint64_t next_free(std::uint64_t bank) const {
    return next_free_[bank];
  }

  std::uint64_t num_banks() const { return next_free_.size(); }
  std::uint64_t breakeven_cycles() const { return breakeven_; }
  bool finished() const { return finished_; }

  // ---- per-bank statistics (valid after finish()) ----

  std::uint64_t accesses(std::uint64_t bank) const;
  /// Cycles spent in the low-power state.
  std::uint64_t sleep_cycles(std::uint64_t bank) const;
  /// Number of sleep episodes == number of wake transitions.
  std::uint64_t sleep_episodes(std::uint64_t bank) const;
  /// Time-weighted useful idleness (sleep residency / total time).
  double sleep_residency(std::uint64_t bank, std::uint64_t total_cycles) const;
  /// Count-weighted useful idleness (share of idle intervals > breakeven).
  double useful_idleness_count(std::uint64_t bank) const;
  const IntervalAccumulator& intervals(std::uint64_t bank) const;

 private:
  /// Bounds-checked read of the next_free column (the scalar-path view).
  std::uint64_t at(std::uint64_t bank) const {
    PCAL_ASSERT_MSG(bank < next_free_.size(), "bank out of range");
    return next_free_[bank];
  }

  // SoA columns, one entry per bank.
  std::vector<std::uint64_t> next_free_;  // first cycle after last access
  std::vector<std::uint64_t> accesses_;
  std::vector<IntervalAccumulator> intervals_;
  std::uint64_t breakeven_;
  std::uint64_t last_cycle_ = 0;
  bool finished_ = false;
};

}  // namespace pcal
