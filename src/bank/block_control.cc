#include "bank/block_control.h"

namespace pcal {

BlockControl::BlockControl(std::uint64_t num_banks,
                           std::uint64_t breakeven_cycles)
    : breakeven_(breakeven_cycles) {
  PCAL_ASSERT_MSG(num_banks > 0, "need at least one bank");
  next_free_.resize(num_banks, 0);
  accesses_.resize(num_banks, 0);
  intervals_.resize(num_banks);
}

void BlockControl::finish(std::uint64_t end_cycle) {
  if (finished_) return;
  for (std::size_t bank = 0; bank < next_free_.size(); ++bank) {
    PCAL_ASSERT_MSG(end_cycle >= next_free_[bank],
                    "end cycle precedes last access");
    intervals_[bank].add_interval(end_cycle - next_free_[bank]);
  }
  finished_ = true;
}

std::uint64_t BlockControl::accesses(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(bank < accesses_.size(), "bank out of range");
  return accesses_[bank];
}

std::uint64_t BlockControl::sleep_cycles(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return intervals(bank).sleep_cycles(breakeven_);
}

std::uint64_t BlockControl::sleep_episodes(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return intervals(bank).intervals_above(breakeven_);
}

double BlockControl::sleep_residency(std::uint64_t bank,
                                     std::uint64_t total_cycles) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return intervals(bank).useful_idleness_time(breakeven_, total_cycles);
}

double BlockControl::useful_idleness_count(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return intervals(bank).useful_idleness_count(breakeven_);
}

const IntervalAccumulator& BlockControl::intervals(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(bank < intervals_.size(), "bank out of range");
  return intervals_[bank];
}

}  // namespace pcal
