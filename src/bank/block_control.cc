#include "bank/block_control.h"

namespace pcal {

BlockControl::BlockControl(std::uint64_t num_banks,
                           std::uint64_t breakeven_cycles)
    : breakeven_(breakeven_cycles) {
  PCAL_ASSERT_MSG(num_banks > 0, "need at least one bank");
  banks_.resize(num_banks);
}

void BlockControl::on_access(std::uint64_t bank, std::uint64_t cycle) {
  PCAL_ASSERT_MSG(!finished_, "BlockControl already finished");
  BankState& b = at(bank);
  PCAL_ASSERT_MSG(cycle >= last_cycle_, "cycles must be non-decreasing");
  last_cycle_ = cycle;
  PCAL_ASSERT_MSG(cycle >= b.next_free, "bank accessed twice in one cycle");
  b.intervals.add_interval(cycle - b.next_free);
  b.next_free = cycle + 1;
  ++b.accesses;
}

void BlockControl::finish(std::uint64_t end_cycle) {
  if (finished_) return;
  for (BankState& b : banks_) {
    PCAL_ASSERT_MSG(end_cycle >= b.next_free,
                    "end cycle precedes last access");
    b.intervals.add_interval(end_cycle - b.next_free);
  }
  finished_ = true;
}

bool BlockControl::is_sleeping(std::uint64_t bank, std::uint64_t cycle) const {
  const BankState& b = at(bank);
  // Sleeping iff the bank has been idle for more than `breakeven_` cycles:
  // the counter starts at the first idle cycle (next_free) and saturates
  // after breakeven_ increments.
  return cycle >= b.next_free && (cycle - b.next_free) >= breakeven_;
}

std::uint64_t BlockControl::idle_gap(std::uint64_t bank,
                                     std::uint64_t cycle) const {
  const BankState& b = at(bank);
  return cycle >= b.next_free ? cycle - b.next_free : 0;
}

std::uint64_t BlockControl::accesses(std::uint64_t bank) const {
  return at(bank).accesses;
}

std::uint64_t BlockControl::sleep_cycles(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return at(bank).intervals.sleep_cycles(breakeven_);
}

std::uint64_t BlockControl::sleep_episodes(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return at(bank).intervals.intervals_above(breakeven_);
}

double BlockControl::sleep_residency(std::uint64_t bank,
                                     std::uint64_t total_cycles) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return at(bank).intervals.useful_idleness_time(breakeven_, total_cycles);
}

double BlockControl::useful_idleness_count(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return at(bank).intervals.useful_idleness_count(breakeven_);
}

const IntervalAccumulator& BlockControl::intervals(std::uint64_t bank) const {
  return at(bank).intervals;
}

}  // namespace pcal
