// Bank decoder "D" with dynamic indexing (paper Fig. 1b + Fig. 2).
//
// Splits an n-bit cache index into (p MSBs = logical bank, n-p LSBs =
// line-in-bank), routes the logical bank through the time-varying f()
// (IndexingPolicy), and produces both the physical set index and the 1-hot
// activation word.  This is the entire hardware addition of the paper's
// architecture; everything else is standard memory-compiler macros.
#pragma once

#include <cstdint>
#include <memory>

#include "bank/one_hot.h"
#include "bank/partition_config.h"
#include "indexing/index_policy.h"

namespace pcal {

struct DecodedIndex {
  std::uint64_t logical_bank = 0;   // p MSBs before f()
  std::uint64_t physical_bank = 0;  // after f()
  std::uint64_t line = 0;           // n-p LSBs, unchanged by f()
  std::uint64_t physical_set = 0;   // physical_bank * lines_per_bank + line
  std::uint64_t select_mask = 0;    // 1-hot over M banks
};

class BankDecoder {
 public:
  /// Takes ownership of the indexing policy.
  BankDecoder(const CacheConfig& cache, const PartitionConfig& partition,
              std::unique_ptr<IndexingPolicy> policy);

  /// Decodes an n-bit set index (as produced by CacheConfig::set_index_of).
  DecodedIndex decode(std::uint64_t set_index) const;

  /// Fires the `update` signal: advances f().  The caller must flush the
  /// cache afterwards — the mapping change invalidates all resident lines.
  void update() { policy_->update(); }

  void reset() { policy_->reset(); }

  const IndexingPolicy& policy() const { return *policy_; }
  IndexingPolicy& policy() { return *policy_; }

  unsigned index_bits() const { return index_bits_; }
  unsigned bank_bits() const { return bank_bits_; }
  std::uint64_t num_banks() const { return num_banks_; }

 private:
  unsigned index_bits_;  // n
  unsigned bank_bits_;   // p
  std::uint64_t num_banks_;
  std::unique_ptr<IndexingPolicy> policy_;
};

}  // namespace pcal
