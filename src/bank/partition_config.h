// Uniform partition geometry (paper §III).
//
// The cache's 2^n lines are split into M = 2^p banks of 2^(n-p) lines each.
// Uniform sizes are the paper's key architectural choice: decoding is a bit
// split (no comparators), the layout is application independent, and the
// miss rate is untouched because the partition never changes which line an
// address can occupy — only *which physical bank* hosts it.
#pragma once

#include <cstdint>

#include "cache/cache_config.h"
#include "util/bitops.h"
#include "util/error.h"

namespace pcal {

struct PartitionConfig {
  std::uint64_t num_banks = 4;  // M; must be a power of two

  /// p in the paper: number of bank-select bits.
  unsigned bank_bits() const { return log2_exact(num_banks); }

  /// Lines per bank for a given cache geometry: 2^(n-p).
  std::uint64_t lines_per_bank(const CacheConfig& cache) const {
    return cache.num_sets() / num_banks;
  }

  /// Bytes of data array per bank.
  std::uint64_t bank_bytes(const CacheConfig& cache) const {
    return cache.size_bytes / num_banks;
  }

  void validate(const CacheConfig& cache) const {
    PCAL_CONFIG_CHECK(is_pow2(num_banks),
                      "bank count must be a power of two, got " << num_banks);
    PCAL_CONFIG_CHECK(num_banks <= 16,
                      "paper considers partitioning feasible only up to "
                      "M = 16 banks (wiring overhead); got " << num_banks);
    PCAL_CONFIG_CHECK(num_banks <= cache.num_sets(),
                      "more banks than cache sets");
  }
};

}  // namespace pcal
