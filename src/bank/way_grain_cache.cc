#include "bank/way_grain_cache.h"

namespace pcal {

WayGrainCache::WayGrainCache(const CacheTopology& topology)
    : config_(topology.cache),
      cache_(topology.cache),
      decoder_(topology.cache, topology.partition,
               make_indexing_policy(topology.indexing,
                                    topology.partition.num_banks,
                                    topology.indexing_seed)),
      num_banks_(topology.partition.num_banks),
      ways_(topology.cache.ways),
      control_(topology.partition.num_banks * topology.cache.ways,
               topology.breakeven_cycles),
      latency_(topology.latency),
      gate_cycles_(topology.gate_cycles()) {}

AccessOutcome WayGrainCache::do_access(std::uint64_t address, bool is_write) {
  return run_access(address, is_write, /*allocate=*/true);
}

AccessOutcome WayGrainCache::do_probe(std::uint64_t address) {
  // A probe miss touches no way; CacheModel reports way 0, so the cost
  // is attributed to the set's first way-column.
  return run_access(address, /*is_write=*/false, /*allocate=*/false);
}

AccessOutcome WayGrainCache::run_access(std::uint64_t address, bool is_write,
                                        bool allocate) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  const std::uint64_t set_index = config_.set_index_of(address);
  const DecodedIndex d = decoder_.decode(set_index);

  const CacheAccessResult r =
      allocate ? cache_.access(config_.tag_of(address), d.physical_set,
                               is_write, address)
               : cache_.probe(config_.tag_of(address), d.physical_set);

  AccessOutcome out;
  out.hit = r.hit;
  out.writeback = r.writeback;
  out.evicted = r.evicted;
  out.victim_address = r.victim_address;
  out.logical_unit = d.logical_bank * ways_ + r.way;
  out.physical_unit = d.physical_bank * ways_ + r.way;
  out.woke_unit = control_.is_sleeping(out.physical_unit, cycle_);
  out.wake = classify_wake(out.woke_unit,
                           control_.idle_gap(out.physical_unit, cycle_),
                           gate_cycles_);
  out.stall_cycles = latency_.event_stall(r.hit, out.wake);

  control_.on_access(out.physical_unit, cycle_);
  ++cycle_;
  return out;
}

bool WayGrainCache::invalidate_line(std::uint64_t address) {
  // Same decode as an access, pure tag-store drop (no cycle, no stats).
  const DecodedIndex d = decoder_.decode(config_.set_index_of(address));
  return cache_.invalidate(config_.tag_of(address), d.physical_set);
}

std::uint64_t WayGrainCache::update_indexing() {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  decoder_.update();
  return cache_.flush();
}

void WayGrainCache::advance_idle(std::uint64_t cycles) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  cycle_ += cycles;
}

void WayGrainCache::finish() {
  if (finished_) return;
  control_.finish(cycle_);
  finished_ = true;
}

double WayGrainCache::unit_residency(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return control_.sleep_residency(unit, cycle_);
}

UnitActivity WayGrainCache::unit_activity(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return unit_activity_from(control_, unit);
}

}  // namespace pcal
