#include "bank/way_grain_cache.h"

#include <algorithm>

namespace pcal {

WayGrainCache::WayGrainCache(const CacheTopology& topology)
    : config_(topology.cache),
      cache_(topology.cache),
      decoder_(topology.cache, topology.partition,
               make_indexing_policy(topology.indexing,
                                    topology.partition.num_banks,
                                    topology.indexing_seed)),
      num_banks_(topology.partition.num_banks),
      ways_(topology.cache.ways),
      control_(topology.partition.num_banks * topology.cache.ways,
               topology.breakeven_cycles),
      latency_(topology.latency),
      gate_cycles_(topology.gate_cycles()) {}

AccessOutcome WayGrainCache::do_access(std::uint64_t address, bool is_write) {
  return run_access(address, is_write, /*allocate=*/true);
}

AccessOutcome WayGrainCache::do_probe(std::uint64_t address) {
  // A probe miss touches no way; CacheModel reports way 0, so the cost
  // is attributed to the set's first way-column.
  return run_access(address, /*is_write=*/false, /*allocate=*/false);
}

AccessOutcome WayGrainCache::run_access(std::uint64_t address, bool is_write,
                                        bool allocate) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  const std::uint64_t set_index = config_.set_index_of(address);
  const DecodedIndex d = decoder_.decode(set_index);

  const CacheAccessResult r =
      allocate ? cache_.access(config_.tag_of(address), d.physical_set,
                               is_write, address)
               : cache_.probe(config_.tag_of(address), d.physical_set);

  AccessOutcome out;
  out.hit = r.hit;
  out.writeback = r.writeback;
  out.evicted = r.evicted;
  out.victim_address = r.victim_address;
  out.logical_unit = d.logical_bank * ways_ + r.way;
  out.physical_unit = d.physical_bank * ways_ + r.way;
  out.woke_unit = control_.is_sleeping(out.physical_unit, cycle_);
  out.wake = classify_wake(out.woke_unit,
                           control_.idle_gap(out.physical_unit, cycle_),
                           gate_cycles_);
  out.stall_cycles = latency_.event_stall(r.hit, out.wake);

  control_.on_access(out.physical_unit, cycle_);
  ++cycle_;
  return out;
}

// Batched hot loop: tags and bank decode are precomputed per chunk (the
// f() mapping only moves on update_indexing(), never mid-batch), but the
// tag store must still be touched in order — the serving *way* is only
// known after the access (hitting way, or the LRU victim), and it picks
// the power-managed unit.  Same outcome fields, Block Control bookkeeping
// and self-applied stalls as the scalar path, bit for bit.
std::uint64_t WayGrainCache::do_access_batch(const MemAccess* accesses,
                                             std::size_t n,
                                             AccessOutcome* out) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  constexpr std::size_t kChunk = 256;
  std::uint64_t tags[kChunk];
  DecodedIndex d[kChunk];
  const std::uint64_t breakeven = control_.breakeven_cycles();
  std::uint64_t stalls = 0;
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t address = accesses[base + j].address;
      tags[j] = config_.tag_of(address);
      d[j] = decoder_.decode(config_.set_index_of(address));
    }
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t address = accesses[base + j].address;
      const bool is_write = accesses[base + j].kind == AccessKind::kWrite;
      AccessOutcome& o = out[base + j];
      const CacheAccessResult r =
          cache_.access(tags[j], d[j].physical_set, is_write, address);
      o.hit = r.hit;
      o.writeback = r.writeback;
      o.evicted = r.evicted;
      o.victim_address = r.victim_address;
      o.logical_unit = d[j].logical_bank * ways_ + r.way;
      o.physical_unit = d[j].physical_bank * ways_ + r.way;
      const std::uint64_t nf = control_.next_free(o.physical_unit);
      const std::uint64_t gap = cycle_ >= nf ? cycle_ - nf : 0;
      o.woke_unit = cycle_ >= nf && gap >= breakeven;
      o.wake = classify_wake(o.woke_unit, gap, gate_cycles_);
      o.stall_cycles = latency_.event_stall(r.hit, o.wake);
      o.num_events = 0;
      o.add_event(0, r.hit, r.writeback, o.physical_unit, address);
      control_.record_access(o.physical_unit, cycle_);
      cycle_ += 1 + o.stall_cycles;
      stalls += o.stall_cycles;
    }
  }
  return stalls;
}

bool WayGrainCache::invalidate_line(std::uint64_t address) {
  // Same decode as an access, pure tag-store drop (no cycle, no stats).
  const DecodedIndex d = decoder_.decode(config_.set_index_of(address));
  return cache_.invalidate(config_.tag_of(address), d.physical_set);
}

std::uint64_t WayGrainCache::update_indexing() {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  decoder_.update();
  return cache_.flush();
}

void WayGrainCache::advance_idle(std::uint64_t cycles) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  cycle_ += cycles;
}

void WayGrainCache::finish() {
  if (finished_) return;
  control_.finish(cycle_);
  finished_ = true;
}

double WayGrainCache::unit_residency(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return control_.sleep_residency(unit, cycle_);
}

UnitActivity WayGrainCache::unit_activity(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return unit_activity_from(control_, unit);
}

}  // namespace pcal
