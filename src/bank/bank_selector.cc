#include "bank/bank_selector.h"

namespace pcal {

BankSelector::BankSelector(std::uint64_t num_banks) {
  PCAL_ASSERT(num_banks > 0);
  states_.assign(num_banks, VddState::kNominal);
  transitions_.assign(num_banks, 0);
}

bool BankSelector::set_state(std::uint64_t bank, VddState state) {
  PCAL_ASSERT(bank < states_.size());
  if (states_[bank] == state) return false;
  states_[bank] = state;
  ++transitions_[bank];
  return true;
}

VddState BankSelector::state(std::uint64_t bank) const {
  PCAL_ASSERT(bank < states_.size());
  return states_[bank];
}

std::uint64_t BankSelector::transitions(std::uint64_t bank) const {
  PCAL_ASSERT(bank < transitions_.size());
  return transitions_[bank];
}

std::uint64_t BankSelector::retention_count() const {
  std::uint64_t n = 0;
  for (VddState s : states_)
    if (s == VddState::kRetention) ++n;
  return n;
}

}  // namespace pcal
