// Bank Selector: per-bank supply-voltage mux (paper Fig. 1).
//
// Drives Vdd or Vdd_low to each bank according to the Block Control
// terminal-count signals.  The low-power state is voltage scaling, not
// power gating — the paper argues this is the only viable choice for
// standard memory-compiler blocks, and it is state preserving, so no
// contents are lost on sleep.  This class tracks the voltage state machine
// and counts transitions; energy costs are attached in src/power.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace pcal {

enum class VddState : std::uint8_t {
  kNominal = 0,  // Vdd: bank active / ready
  kRetention = 1 // Vdd_low: drowsy, state preserving, not accessible
};

class BankSelector {
 public:
  explicit BankSelector(std::uint64_t num_banks);

  /// Applies the sleep decision for one bank.  Returns true if the state
  /// changed (a Vdd transition occurred).
  bool set_state(std::uint64_t bank, VddState state);

  VddState state(std::uint64_t bank) const;
  bool is_retention(std::uint64_t bank) const {
    return state(bank) == VddState::kRetention;
  }

  std::uint64_t num_banks() const { return states_.size(); }

  /// Total Vdd transitions (either direction) on a bank.
  std::uint64_t transitions(std::uint64_t bank) const;

  /// Banks currently in retention.
  std::uint64_t retention_count() const;

 private:
  std::vector<VddState> states_;
  std::vector<std::uint64_t> transitions_;
};

}  // namespace pcal
