#include "bank/banked_cache.h"

namespace pcal {

BankedCache::BankedCache(const BankedCacheConfig& config)
    : config_(config),
      cache_(config.cache),
      decoder_(config.cache, config.partition,
               make_indexing_policy(config.indexing,
                                    config.partition.num_banks,
                                    config.indexing_seed)),
      block_control_(config.partition.num_banks, config.breakeven_cycles),
      gate_cycles_(config.gate_cycles != 0 ? config.gate_cycles
                                           : config.breakeven_cycles) {
  config_.validate();
}

BankedAccessOutcome BankedCache::access(std::uint64_t address, bool is_write) {
  return run_access(address, is_write, /*allocate=*/true);
}

BankedAccessOutcome BankedCache::run_access(std::uint64_t address,
                                            bool is_write, bool allocate) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  const std::uint64_t set_index = config_.cache.set_index_of(address);
  const DecodedIndex d = decoder_.decode(set_index);

  BankedAccessOutcome out;
  out.logical_bank = d.logical_bank;
  out.physical_bank = d.physical_bank;
  out.woke_bank = block_control_.is_sleeping(d.physical_bank, cycle_);
  out.wake =
      classify_wake(out.woke_bank,
                    block_control_.idle_gap(d.physical_bank, cycle_),
                    gate_cycles_);

  const std::uint64_t tag = config_.cache.tag_of(address);
  const CacheAccessResult r =
      allocate ? cache_.access(tag, d.physical_set, is_write, address)
               : cache_.probe(tag, d.physical_set);
  out.hit = r.hit;
  out.writeback = r.writeback;
  out.evicted = r.evicted;
  out.victim_address = r.victim_address;
  out.stall_cycles = config_.latency.event_stall(r.hit, out.wake);

  block_control_.on_access(d.physical_bank, cycle_);
  ++cycle_;
  return out;
}

bool BankedCache::invalidate_line(std::uint64_t address) {
  // The same decode as an access — same time-varying mapping — but a
  // pure tag-store drop: no cycle, no Block Control touch, no stats.
  const DecodedIndex d =
      decoder_.decode(config_.cache.set_index_of(address));
  return cache_.invalidate(config_.cache.tag_of(address), d.physical_set);
}

std::uint64_t BankedCache::update_indexing() {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  decoder_.update();
  return cache_.flush();
}

void BankedCache::advance_idle(std::uint64_t cycles) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  cycle_ += cycles;
}

void BankedCache::finish() {
  if (finished_) return;
  block_control_.finish(cycle_);
  finished_ = true;
}

double BankedCache::bank_residency(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return block_control_.sleep_residency(bank, cycle_);
}

AccessOutcome BankedCache::do_probe(std::uint64_t address) {
  const BankedAccessOutcome b =
      run_access(address, /*is_write=*/false, /*allocate=*/false);
  AccessOutcome out;
  out.hit = b.hit;
  out.logical_unit = b.logical_bank;
  out.physical_unit = b.physical_bank;
  out.woke_unit = b.woke_bank;
  out.wake = b.wake;
  out.stall_cycles = b.stall_cycles;
  return out;
}

AccessOutcome BankedCache::do_access(std::uint64_t address, bool is_write) {
  const BankedAccessOutcome b = access(address, is_write);
  AccessOutcome out;
  out.hit = b.hit;
  out.writeback = b.writeback;
  out.logical_unit = b.logical_bank;
  out.physical_unit = b.physical_bank;
  out.woke_unit = b.woke_bank;
  out.wake = b.wake;
  out.stall_cycles = b.stall_cycles;
  out.evicted = b.evicted;
  out.victim_address = b.victim_address;
  return out;
}

UnitActivity BankedCache::unit_activity(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return unit_activity_from(block_control_, unit);
}

}  // namespace pcal
