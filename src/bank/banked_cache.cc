#include "bank/banked_cache.h"

#include <algorithm>

namespace pcal {

BankedCache::BankedCache(const BankedCacheConfig& config)
    : config_(config),
      cache_(config.cache),
      decoder_(config.cache, config.partition,
               make_indexing_policy(config.indexing,
                                    config.partition.num_banks,
                                    config.indexing_seed)),
      block_control_(config.partition.num_banks, config.breakeven_cycles),
      gate_cycles_(config.gate_cycles != 0 ? config.gate_cycles
                                           : config.breakeven_cycles) {
  config_.validate();
}

BankedAccessOutcome BankedCache::access(std::uint64_t address, bool is_write) {
  return run_access(address, is_write, /*allocate=*/true);
}

BankedAccessOutcome BankedCache::run_access(std::uint64_t address,
                                            bool is_write, bool allocate) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  const std::uint64_t set_index = config_.cache.set_index_of(address);
  const DecodedIndex d = decoder_.decode(set_index);

  BankedAccessOutcome out;
  out.logical_bank = d.logical_bank;
  out.physical_bank = d.physical_bank;
  out.woke_bank = block_control_.is_sleeping(d.physical_bank, cycle_);
  out.wake =
      classify_wake(out.woke_bank,
                    block_control_.idle_gap(d.physical_bank, cycle_),
                    gate_cycles_);

  const std::uint64_t tag = config_.cache.tag_of(address);
  const CacheAccessResult r =
      allocate ? cache_.access(tag, d.physical_set, is_write, address)
               : cache_.probe(tag, d.physical_set);
  out.hit = r.hit;
  out.writeback = r.writeback;
  out.evicted = r.evicted;
  out.victim_address = r.victim_address;
  out.stall_cycles = config_.latency.event_stall(r.hit, out.wake);

  block_control_.on_access(d.physical_bank, cycle_);
  ++cycle_;
  return out;
}

bool BankedCache::invalidate_line(std::uint64_t address) {
  // The same decode as an access — same time-varying mapping — but a
  // pure tag-store drop: no cycle, no Block Control touch, no stats.
  const DecodedIndex d =
      decoder_.decode(config_.cache.set_index_of(address));
  return cache_.invalidate(config_.cache.tag_of(address), d.physical_set);
}

std::uint64_t BankedCache::update_indexing() {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  decoder_.update();
  return cache_.flush();
}

void BankedCache::advance_idle(std::uint64_t cycles) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  cycle_ += cycles;
}

void BankedCache::finish() {
  if (finished_) return;
  block_control_.finish(cycle_);
  finished_ = true;
}

double BankedCache::bank_residency(std::uint64_t bank) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return block_control_.sleep_residency(bank, cycle_);
}

AccessOutcome BankedCache::do_probe(std::uint64_t address) {
  const BankedAccessOutcome b =
      run_access(address, /*is_write=*/false, /*allocate=*/false);
  AccessOutcome out;
  out.hit = b.hit;
  out.logical_unit = b.logical_bank;
  out.physical_unit = b.physical_bank;
  out.woke_unit = b.woke_bank;
  out.wake = b.wake;
  out.stall_cycles = b.stall_cycles;
  return out;
}

AccessOutcome BankedCache::do_access(std::uint64_t address, bool is_write) {
  const BankedAccessOutcome b = access(address, is_write);
  AccessOutcome out;
  out.hit = b.hit;
  out.writeback = b.writeback;
  out.logical_unit = b.logical_bank;
  out.physical_unit = b.physical_bank;
  out.woke_unit = b.woke_bank;
  out.wake = b.wake;
  out.stall_cycles = b.stall_cycles;
  out.evicted = b.evicted;
  out.victim_address = b.victim_address;
  return out;
}

// Batched hot loop, two stages per chunk: (1) tag extraction and the
// bank decoder's f() mapping for the whole chunk — the mapping only
// moves on update_indexing(), which the driver never fires mid-batch —
// then (2) power bookkeeping and the tag-store access per element.  One
// invariant check per batch, Block Control via the assert-free
// record_access, and outcome fields written straight into the caller's
// array (no BankedAccessOutcome -> AccessOutcome conversion).  Each
// access's stall self-advances the clock, so every statistic matches
// the scalar path bit for bit.
std::uint64_t BankedCache::do_access_batch(const MemAccess* accesses,
                                           std::size_t n, AccessOutcome* out) {
  PCAL_ASSERT_MSG(!finished_, "cache already finished");
  constexpr std::size_t kChunk = 256;
  std::uint64_t tags[kChunk];
  DecodedIndex d[kChunk];
  const std::uint64_t breakeven = block_control_.breakeven_cycles();
  std::uint64_t stalls = 0;
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t address = accesses[base + j].address;
      tags[j] = config_.cache.tag_of(address);
      d[j] = decoder_.decode(config_.cache.set_index_of(address));
    }
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t address = accesses[base + j].address;
      const bool is_write = accesses[base + j].kind == AccessKind::kWrite;
      AccessOutcome& o = out[base + j];
      const std::uint64_t bank = d[j].physical_bank;
      const std::uint64_t nf = block_control_.next_free(bank);
      const std::uint64_t gap = cycle_ >= nf ? cycle_ - nf : 0;
      o.woke_unit = cycle_ >= nf && gap >= breakeven;
      o.wake = classify_wake(o.woke_unit, gap, gate_cycles_);
      const CacheAccessResult r =
          cache_.access(tags[j], d[j].physical_set, is_write, address);
      o.hit = r.hit;
      o.writeback = r.writeback;
      o.evicted = r.evicted;
      o.victim_address = r.victim_address;
      o.logical_unit = d[j].logical_bank;
      o.physical_unit = bank;
      o.stall_cycles = config_.latency.event_stall(r.hit, o.wake);
      o.num_events = 0;
      o.add_event(0, r.hit, r.writeback, bank, address);
      block_control_.record_access(bank, cycle_);
      cycle_ += 1 + o.stall_cycles;
      stalls += o.stall_cycles;
    }
  }
  return stalls;
}

UnitActivity BankedCache::unit_activity(std::uint64_t unit) const {
  PCAL_ASSERT_MSG(finished_, "call finish() first");
  return unit_activity_from(block_control_, unit);
}

}  // namespace pcal
