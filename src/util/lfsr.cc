#include "util/lfsr.h"

#include "util/bitops.h"

namespace pcal {

std::uint64_t GaloisLfsr::taps_for_width(unsigned width) {
  // Maximal-length feedback polynomials (tap masks, LSB-first convention:
  // bit i set means x^(i+1) term feeds back).  Standard tables, e.g.
  // Xilinx XAPP052 / Numerical Recipes.
  switch (width) {
    case 2:  return 0x3;        // x^2 + x + 1
    case 3:  return 0x6;        // x^3 + x^2 + 1
    case 4:  return 0xC;        // x^4 + x^3 + 1
    case 5:  return 0x14;       // x^5 + x^3 + 1
    case 6:  return 0x30;       // x^6 + x^5 + 1
    case 7:  return 0x60;       // x^7 + x^6 + 1
    case 8:  return 0xB8;       // x^8 + x^6 + x^5 + x^4 + 1
    case 9:  return 0x110;      // x^9 + x^5 + 1
    case 10: return 0x240;      // x^10 + x^7 + 1
    case 11: return 0x500;      // x^11 + x^9 + 1
    case 12: return 0xE08;      // x^12 + x^11 + x^10 + x^4 + 1
    case 13: return 0x1C80;     // x^13 + x^12 + x^11 + x^8 + 1
    case 14: return 0x3802;     // x^14 + x^13 + x^12 + x^2 + 1
    case 15: return 0x6000;     // x^15 + x^14 + 1
    case 16: return 0xD008;     // x^16 + x^15 + x^13 + x^4 + 1
    case 17: return 0x12000;    // x^17 + x^14 + 1
    case 18: return 0x20400;    // x^18 + x^11 + 1
    case 19: return 0x72000;    // x^19 + x^18 + x^17 + x^14 + 1
    case 20: return 0x90000;    // x^20 + x^17 + 1
    case 21: return 0x140000;   // x^21 + x^19 + 1
    case 22: return 0x300000;   // x^22 + x^21 + 1
    case 23: return 0x420000;   // x^23 + x^18 + 1
    case 24: return 0xE10000;   // x^24 + x^23 + x^22 + x^17 + 1
    default:
      PCAL_ASSERT_MSG(false, "no LFSR taps for width " << width);
  }
}

GaloisLfsr::GaloisLfsr(unsigned w, std::uint64_t seed)
    : width_(w),
      taps_(taps_for_width(w)),
      mask_(low_mask(w)),
      state_(seed & mask_) {
  PCAL_ASSERT_MSG(state_ != 0, "LFSR seed must be nonzero modulo 2^width");
}

std::uint64_t GaloisLfsr::step() {
  // Canonical right-shift Galois update: the tap mask has bit j set iff the
  // polynomial has an x^(j+1) term, so bit width-1 (the x^width term) is
  // always set and re-injects the shifted-out bit.
  const bool lsb = (state_ & 1) != 0;
  state_ >>= 1;
  if (lsb) state_ ^= taps_;
  state_ &= mask_;
  PCAL_ASSERT(state_ != 0);
  return state_;
}

}  // namespace pcal
