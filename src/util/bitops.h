// Bit-manipulation helpers used by cache geometry and the bank decoder.
//
// Cache indexing is all powers of two; these helpers make the intent
// explicit and validated instead of scattering shifts and masks around.
#pragma once

#include <cstdint>

#include "util/error.h"

namespace pcal {

/// True iff `v` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two. Throws if `v` is not a power of two.
/// (__builtin_ctzll instead of C++20 std::countr_zero — this header is
/// C++17.)
inline unsigned log2_exact(std::uint64_t v) {
  PCAL_ASSERT_MSG(is_pow2(v), "log2_exact requires a power of two, got " << v);
  return static_cast<unsigned>(__builtin_ctzll(v));
}

/// Ceiling log2 (log2_ceil(1) == 0). Throws on zero.
inline unsigned log2_ceil(std::uint64_t v) {
  PCAL_ASSERT(v != 0);
  if (v == 1) return 0;
  return static_cast<unsigned>(64 - __builtin_clzll(v - 1));
}

/// A mask with the low `bits` bits set. `bits` may be 0..64.
constexpr std::uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/// Extract `count` bits of `v` starting at bit `lsb` (LSB-numbered).
constexpr std::uint64_t extract_bits(std::uint64_t v, unsigned lsb,
                                     unsigned count) {
  return (v >> lsb) & low_mask(count);
}

/// Replace `count` bits of `v` at `lsb` with the low bits of `field`.
constexpr std::uint64_t deposit_bits(std::uint64_t v, unsigned lsb,
                                     unsigned count, std::uint64_t field) {
  const std::uint64_t m = low_mask(count) << lsb;
  return (v & ~m) | ((field << lsb) & m);
}

/// Population count convenience wrapper.
constexpr unsigned popcount64(std::uint64_t v) {
  return static_cast<unsigned>(__builtin_popcountll(v));
}

/// Round `v` up to the next power of two (identity on powers of two).
inline std::uint64_t next_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  return std::uint64_t{1} << log2_ceil(v);
}

}  // namespace pcal
