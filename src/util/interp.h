// Interpolated lookup tables.
//
// The aging characterizer produces a (p0, P_sleep) -> lifetime table, the
// software analogue of the SPICE-derived LUT the paper stores; the cache
// simulator queries it with bilinear interpolation.  Grid axes are strictly
// increasing but need not be uniform.
#pragma once

#include <iosfwd>
#include <vector>

namespace pcal {

/// 1-D piecewise-linear table y(x) over a strictly increasing axis.
/// Queries outside the axis clamp to the end values.
class LinearTable1D {
 public:
  LinearTable1D() = default;
  LinearTable1D(std::vector<double> xs, std::vector<double> ys);

  double operator()(double x) const;

  std::size_t size() const { return xs_.size(); }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// 2-D bilinear table z(x, y) over strictly increasing axes, clamped at the
/// borders.  Values are stored row-major: value(i, j) = z(xs[i], ys[j]).
class BilinearTable2D {
 public:
  BilinearTable2D() = default;
  BilinearTable2D(std::vector<double> xs, std::vector<double> ys,
                  std::vector<double> values_row_major);

  double operator()(double x, double y) const;

  double at(std::size_t i, std::size_t j) const;

  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  bool empty() const { return values_.empty(); }

  /// Plain-text serialization (round-trips with deserialize).
  void serialize(std::ostream& os) const;
  static BilinearTable2D deserialize(std::istream& is);

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> values_;  // row-major, size xs_.size() * ys_.size()
};

}  // namespace pcal
