#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace pcal {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PCAL_ASSERT_MSG(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  PCAL_ASSERT_MSG(cells.size() == header_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double v, int precision) {
  return num(v * 100.0, precision);
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Left-align the first column (names), right-align numbers.
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      else
        os << std::right << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void TextTable::render_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const bool quote = cells[c].find(',') != std::string::npos ||
                         cells[c].find('"') != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace pcal
