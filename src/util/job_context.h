// Thread-local deadline of the sweep job running on this thread.
//
// A SweepRunner worker cannot safely kill a thread that is deep inside a
// simulation, so per-job timeouts are cooperative: the engine arms a
// thread-local deadline before a job starts, and cancellation points —
// trace-batch boundaries, interval observers, the fault-injection hang
// loop — poll it and throw JobTimeoutError when it has passed.  The
// helpers live in util/ so trace-layer wrappers can poll without
// depending on the sweep engine.
//
// Thread-safety: the deadline is thread-local state; arming it on one
// worker never affects jobs on other workers.  The poll costs one
// steady_clock read and is meant for batch-granular call sites (every
// few hundred accesses), not per-access hot loops.
#pragma once

#include <chrono>
#include <cstdint>

namespace pcal {

/// Arms the calling thread's job deadline `deadline_ms` from now.
/// 0 disarms (no deadline — polls return false).
void arm_job_deadline(std::uint64_t deadline_ms);

/// Disarms the calling thread's job deadline.
void clear_job_deadline();

/// True iff a deadline is armed on this thread and has passed.
bool job_deadline_exceeded();

/// Polls the deadline and throws JobTimeoutError naming `where` when it
/// has passed; no-op when disarmed or not yet due.
void throw_if_job_deadline_exceeded(const char* where);

}  // namespace pcal
