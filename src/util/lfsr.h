// Linear-feedback shift registers.
//
// The paper's Scrambling indexing scheme (Fig. 3b) XORs the p-bit bank
// address with the output of an LFSR that advances on every `update` event.
// We model a Galois LFSR with maximal-length taps for widths 2..24, which is
// exactly what a hardware implementation would synthesize (a p-bit register
// plus a handful of XOR gates).
#pragma once

#include <cstdint>

#include "util/error.h"

namespace pcal {

/// Galois LFSR over GF(2) with maximal-length feedback polynomial.
///
/// A width-`w` maximal LFSR cycles through all 2^w - 1 nonzero states.  The
/// Scrambling indexer uses `state() & mask` as its XOR pattern, giving a
/// quasi-uniform sequence of bank permutations.
class GaloisLfsr {
 public:
  /// `width` in [2, 24]; `seed` must be nonzero in the low `width` bits
  /// (a zero state is the LFSR's fixed point and is rejected).
  GaloisLfsr(unsigned width, std::uint64_t seed = 1);

  /// Advance one step and return the new state.
  std::uint64_t step();

  /// Current state (never zero).
  std::uint64_t state() const { return state_; }

  unsigned width() const { return width_; }

  /// Period of a maximal-length LFSR of this width: 2^width - 1.
  std::uint64_t period() const { return (std::uint64_t{1} << width_) - 1; }

  /// The feedback polynomial tap mask used for `width` (for tests/docs).
  static std::uint64_t taps_for_width(unsigned width);

 private:
  unsigned width_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

}  // namespace pcal
