// Error handling primitives for pcal.
//
// The library reports contract violations and invalid configurations by
// throwing pcal::Error.  Hot simulation paths use PCAL_ASSERT, which compiles
// to a cheap branch and is kept enabled in release builds: a trace-driven
// simulator that silently corrupts indices produces plausible-looking wrong
// tables, which is worse than an abort.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pcal {

/// Base exception for all pcal errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a user-supplied configuration is structurally invalid
/// (e.g. non-power-of-two cache size, zero banks).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed input files (trace files, serialized tables).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A failure that may succeed on retry (I/O hiccup, resource pressure,
/// injected test faults).  The sweep engine's JobPolicy retries these up
/// to its attempt budget; every other exception type is permanent and
/// fails the job on the first throw.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// Thrown when a sweep job exceeds its JobPolicy deadline.  Raised from
/// the cooperative cancellation points (trace-batch boundaries, interval
/// observers, the fault-injection hang loop) — never retried.
class JobTimeoutError : public Error {
 public:
  explicit JobTimeoutError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace pcal

/// Always-on invariant check; throws pcal::Error on failure.
#define PCAL_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::pcal::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Invariant check with a formatted message (streamed).
#define PCAL_ASSERT_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream pcal_assert_os_;                                \
      pcal_assert_os_ << msg;                                            \
      ::pcal::detail::throw_check_failure(#expr, __FILE__, __LINE__,     \
                                          pcal_assert_os_.str());        \
    }                                                                    \
  } while (0)

/// Configuration validation helper: throws ConfigError with the message.
#define PCAL_CONFIG_CHECK(expr, msg)                  \
  do {                                                \
    if (!(expr)) {                                    \
      std::ostringstream pcal_cfg_os_;                \
      pcal_cfg_os_ << msg;                            \
      throw ::pcal::ConfigError(pcal_cfg_os_.str());  \
    }                                                 \
  } while (0)
