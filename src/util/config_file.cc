#include "util/config_file.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/string_util.h"

namespace pcal {

ConfigFile ConfigFile::parse(std::istream& is) {
  ConfigFile cfg;
  std::string line;
  std::string section;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#' || t.front() == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']' || t.size() < 3)
        throw ParseError("config line " + std::to_string(lineno) +
                         ": malformed section header");
      section = std::string(trim(t.substr(1, t.size() - 2)));
      continue;
    }
    const std::size_t eq = t.find('=');
    if (eq == std::string_view::npos)
      throw ParseError("config line " + std::to_string(lineno) +
                       ": expected 'key = value'");
    const std::string key{trim(t.substr(0, eq))};
    const std::string value{trim(t.substr(eq + 1))};
    if (key.empty())
      throw ParseError("config line " + std::to_string(lineno) +
                       ": empty key");
    cfg.values_[section][key] = value;
  }
  return cfg;
}

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ParseError("cannot open config file: " + path);
  return parse(f);
}

bool ConfigFile::has(const std::string& section,
                     const std::string& key) const {
  const auto s = values_.find(section);
  return s != values_.end() && s->second.count(key) > 0;
}

std::optional<std::string> ConfigFile::get(const std::string& section,
                                           const std::string& key) const {
  const auto s = values_.find(section);
  if (s == values_.end()) return std::nullopt;
  const auto k = s->second.find(key);
  if (k == s->second.end()) return std::nullopt;
  return k->second;
}

std::string ConfigFile::get_string(const std::string& section,
                                   const std::string& key,
                                   const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

std::uint64_t ConfigFile::get_u64(const std::string& section,
                                  const std::string& key,
                                  std::uint64_t fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    std::size_t consumed = 0;
    const std::uint64_t out = std::stoull(*v, &consumed, 0);
    // Allow a trailing k/M multiplier (e.g. "8k" bytes).
    if (consumed == v->size()) return out;
    if (consumed + 1 == v->size()) {
      const char suffix = (*v)[consumed];
      if (suffix == 'k' || suffix == 'K') return out * 1024;
      if (suffix == 'm' || suffix == 'M') return out * 1024 * 1024;
    }
  } catch (const std::exception&) {
  }
  throw ParseError("config value [" + section + "]." + key + " = '" + *v +
                   "' is not an integer");
}

double ConfigFile::get_double(const std::string& section,
                              const std::string& key,
                              double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    std::size_t consumed = 0;
    const double out = std::stod(*v, &consumed);
    if (consumed == v->size()) return out;
  } catch (const std::exception&) {
  }
  throw ParseError("config value [" + section + "]." + key + " = '" + *v +
                   "' is not a number");
}

bool ConfigFile::get_bool(const std::string& section, const std::string& key,
                          bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const std::string lower = to_lower(*v);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on")
    return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off")
    return false;
  throw ParseError("config value [" + section + "]." + key + " = '" + *v +
                   "' is not a boolean");
}

void ConfigFile::set(const std::string& section, const std::string& key,
                     const std::string& value) {
  values_[section][key] = value;
}

void ConfigFile::apply_override(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  const std::size_t dot = spec.find('.');
  if (eq == std::string::npos || dot == std::string::npos || dot > eq)
    throw ParseError("override must look like section.key=value: " + spec);
  set(std::string(trim(spec.substr(0, dot))),
      std::string(trim(spec.substr(dot + 1, eq - dot - 1))),
      std::string(trim(spec.substr(eq + 1))));
}

std::size_t ConfigFile::size() const {
  std::size_t n = 0;
  for (const auto& [s, kv] : values_) n += kv.size();
  return n;
}

}  // namespace pcal
