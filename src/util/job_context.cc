#include "util/job_context.h"

#include <string>

#include "util/error.h"

namespace pcal {
namespace {

struct JobDeadline {
  bool armed = false;
  std::chrono::steady_clock::time_point due;
};

thread_local JobDeadline t_deadline;

}  // namespace

void arm_job_deadline(std::uint64_t deadline_ms) {
  if (deadline_ms == 0) {
    clear_job_deadline();
    return;
  }
  t_deadline.armed = true;
  t_deadline.due = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(deadline_ms);
}

void clear_job_deadline() { t_deadline = JobDeadline{}; }

bool job_deadline_exceeded() {
  return t_deadline.armed && std::chrono::steady_clock::now() >= t_deadline.due;
}

void throw_if_job_deadline_exceeded(const char* where) {
  if (job_deadline_exceeded())
    throw JobTimeoutError(std::string("job deadline exceeded at ") + where);
}

}  // namespace pcal
