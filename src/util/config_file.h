// Minimal INI-style configuration files for the pcalsim CLI.
//
// Format: `[section]` headers, `key = value` pairs, `#` or `;` comments,
// blank lines ignored.  Keys are unique per section (later duplicates
// overwrite).  Typed getters validate and fall back to defaults.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

namespace pcal {

class ConfigFile {
 public:
  /// Parses the stream; throws ParseError with a line number on errors.
  static ConfigFile parse(std::istream& is);

  /// Loads from a path; throws ParseError if unreadable.
  static ConfigFile load(const std::string& path);

  bool has(const std::string& section, const std::string& key) const;

  /// Raw string access; nullopt if absent.
  std::optional<std::string> get(const std::string& section,
                                 const std::string& key) const;

  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& section, const std::string& key,
                        std::uint64_t fallback) const;
  double get_double(const std::string& section, const std::string& key,
                    double fallback) const;
  bool get_bool(const std::string& section, const std::string& key,
                bool fallback) const;

  /// Sets/overrides a value (used for command-line overrides
  /// "section.key=value").
  void set(const std::string& section, const std::string& key,
           const std::string& value);

  /// Applies an override of the form "section.key=value".
  void apply_override(const std::string& spec);

  std::size_t size() const;

 private:
  // section -> key -> value
  std::map<std::string, std::map<std::string, std::string>> values_;
};

}  // namespace pcal
