#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pcal {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // An all-zero state would be absorbing; SplitMix64 cannot produce four
  // consecutive zeros from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  PCAL_ASSERT(bound != 0);
  // Lemire-style rejection: accept unless we fall into the biased tail.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Xoshiro256::next_in(std::uint64_t lo, std::uint64_t hi) {
  PCAL_ASSERT(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

bool Xoshiro256::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) {
  PCAL_ASSERT_MSG(n > 0, "ZipfSampler needs a nonempty support");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint64_t ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace pcal
