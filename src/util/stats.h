// Streaming statistics used throughout the simulator.
//
// IntervalAccumulator is the load-bearing piece: the paper's "useful
// idleness" of a bank is the share of its idle intervals that exceed the
// breakeven time, i.e. the idleness that power management can actually
// convert into sleep residency.  We track every idle interval length and can
// answer both the time-weighted definition (used for energy and aging) and
// the count-weighted one (reported for comparison).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace pcal {

/// Welford-style running mean/variance with min/max.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one.
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi); outliers go to under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  /// [lo, hi) bounds of bucket i.
  std::pair<double, double> bucket_bounds(std::size_t i) const;
  /// Approximate quantile (linear within buckets). q in [0,1].
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Records idle-interval lengths (in cycles) for one power-managed block and
/// computes the paper's "useful idleness" metrics against a breakeven time.
///
/// Storage: lengths up to kSmallMax are counted in a flat array (the hot
/// path — idle gaps in cache traces are short and heavily repeated), longer
/// ones in a map.  The split is invisible to the queries: every result is
/// bit-identical to the original all-map layout, just O(1) per add on the
/// hot lengths instead of a tree insert.  The array is allocated lazily on
/// the first short interval, so barely-touched accumulators (one per line
/// at kLine granularity) stay tiny.
class IntervalAccumulator {
 public:
  /// Record one completed idle interval of `cycles` length (may be 0 = no
  /// idle gap; zero-length intervals are ignored).
  void add_interval(std::uint64_t cycles) {
    if (cycles == 0) return;
    ++count_;
    total_idle_ += cycles;
    if (cycles > longest_) longest_ = cycles;
    if (cycles <= kSmallMax) {
      if (small_.empty()) small_.assign(kSmallMax + 1, 0);
      ++small_[cycles];
    } else {
      ++by_length_[cycles];
    }
  }

  std::uint64_t interval_count() const { return count_; }
  std::uint64_t total_idle_cycles() const { return total_idle_; }
  std::uint64_t longest() const { return longest_; }

  /// Sum of cycles in intervals strictly longer than `breakeven`.
  std::uint64_t idle_cycles_above(std::uint64_t breakeven) const;

  /// Number of intervals strictly longer than `breakeven`.
  std::uint64_t intervals_above(std::uint64_t breakeven) const;

  /// Time-weighted useful idleness: sleep residency divided by
  /// `total_cycles` of observation.  A block only enters the low-power state
  /// after its breakeven counter saturates, so an interval of length `len`
  /// contributes `len - breakeven` cycles of actual sleep.  This is the
  /// quantity that drives both leakage savings and NBTI relief.
  double useful_idleness_time(std::uint64_t breakeven,
                              std::uint64_t total_cycles) const;

  /// Count-weighted useful idleness: share of idle intervals longer than the
  /// breakeven time.
  double useful_idleness_count(std::uint64_t breakeven) const;

  /// Sleep residency in cycles: sum over qualifying intervals of
  /// (len - breakeven).
  std::uint64_t sleep_cycles(std::uint64_t breakeven) const;

  void merge(const IntervalAccumulator& other);

 private:
  /// Largest interval length counted in the flat array.
  static constexpr std::uint64_t kSmallMax = 1024;

  /// Occurrence counts for lengths 1..kSmallMax, indexed by length (slot 0
  /// unused).  Empty until the first short interval arrives.
  std::vector<std::uint64_t> small_;
  // Interval length -> occurrence count, lengths > kSmallMax only.  Long
  // idle intervals are rare, so the map stays small.
  std::map<std::uint64_t, std::uint64_t> by_length_;
  std::uint64_t count_ = 0;
  std::uint64_t total_idle_ = 0;
  std::uint64_t longest_ = 0;
};

}  // namespace pcal
