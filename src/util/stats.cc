#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pcal {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  PCAL_ASSERT_MSG(hi > lo && buckets > 0, "invalid histogram bounds");
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);  // guard FP edge at hi_
    ++counts_[i];
  }
}

std::pair<double, double> Histogram::bucket_bounds(std::size_t i) const {
  PCAL_ASSERT(i < counts_.size());
  return {lo_ + width_ * static_cast<double>(i),
          lo_ + width_ * static_cast<double>(i + 1)};
}

double Histogram::quantile(double q) const {
  PCAL_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double seen = static_cast<double>(underflow_);
  if (seen >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (seen + c >= target && c > 0) {
      const double frac = (target - seen) / c;
      return lo_ + width_ * (static_cast<double>(i) + frac);
    }
    seen += c;
  }
  return hi_;
}

std::uint64_t IntervalAccumulator::idle_cycles_above(
    std::uint64_t breakeven) const {
  std::uint64_t sum = 0;
  for (std::uint64_t len = breakeven + 1;
       len < small_.size() && len <= kSmallMax; ++len)
    sum += len * small_[len];
  for (auto it = by_length_.upper_bound(breakeven); it != by_length_.end();
       ++it) {
    sum += it->first * it->second;
  }
  return sum;
}

std::uint64_t IntervalAccumulator::intervals_above(
    std::uint64_t breakeven) const {
  std::uint64_t n = 0;
  for (std::uint64_t len = breakeven + 1;
       len < small_.size() && len <= kSmallMax; ++len)
    n += small_[len];
  for (auto it = by_length_.upper_bound(breakeven); it != by_length_.end();
       ++it) {
    n += it->second;
  }
  return n;
}

std::uint64_t IntervalAccumulator::sleep_cycles(std::uint64_t breakeven) const {
  std::uint64_t sum = 0;
  for (std::uint64_t len = breakeven + 1;
       len < small_.size() && len <= kSmallMax; ++len)
    sum += (len - breakeven) * small_[len];
  for (auto it = by_length_.upper_bound(breakeven); it != by_length_.end();
       ++it) {
    sum += (it->first - breakeven) * it->second;
  }
  return sum;
}

double IntervalAccumulator::useful_idleness_time(
    std::uint64_t breakeven, std::uint64_t total_cycles) const {
  if (total_cycles == 0) return 0.0;
  return static_cast<double>(sleep_cycles(breakeven)) /
         static_cast<double>(total_cycles);
}

double IntervalAccumulator::useful_idleness_count(
    std::uint64_t breakeven) const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(intervals_above(breakeven)) /
         static_cast<double>(count_);
}

void IntervalAccumulator::merge(const IntervalAccumulator& o) {
  if (!o.small_.empty()) {
    if (small_.empty()) small_.assign(kSmallMax + 1, 0);
    for (std::uint64_t len = 1; len < o.small_.size(); ++len)
      small_[len] += o.small_[len];
  }
  for (const auto& [len, n] : o.by_length_) by_length_[len] += n;
  count_ += o.count_;
  total_idle_ += o.total_idle_;
  longest_ = std::max(longest_, o.longest_);
}

}  // namespace pcal
