#include "util/string_util.h"

#include <cctype>
#include <sstream>

namespace pcal {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string s) {
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string basename_of(std::string_view path) {
  return std::string(path.substr(path.find_last_of('/') + 1));
}

std::string format_size(std::uint64_t bytes) {
  std::ostringstream os;
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0)
    os << bytes / (1024 * 1024) << "MB";
  else if (bytes >= 1024 && bytes % 1024 == 0)
    os << bytes / 1024 << "kB";
  else
    os << bytes << "B";
  return os.str();
}

}  // namespace pcal
