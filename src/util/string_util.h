// Small string helpers shared by trace I/O and report formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pcal {

/// Splits on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII in place and returns the string.
std::string to_lower(std::string s);

/// Formats a byte count as "8kB" / "512B" style (exact divisions only).
std::string format_size(std::uint64_t bytes);

/// The final '/'-separated component of a path ("a/b/c.pct" -> "c.pct").
std::string basename_of(std::string_view path);

}  // namespace pcal
