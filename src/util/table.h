// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables; TextTable keeps
// the output aligned and also emits CSV so results can be post-processed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pcal {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);
  /// Percentage with `precision` decimals (value 0.423 -> "42.3").
  static std::string pct(double v, int precision = 1);

  /// Renders with column alignment and a header rule.
  void render(std::ostream& os) const;

  /// Renders as CSV (RFC-ish: quotes cells containing commas).
  void render_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pcal
