// Lightweight physical-unit helpers.
//
// The aging model mixes seconds (device physics), years (reported
// lifetimes) and cycles (simulation time); the power model mixes joules,
// watts and volts.  We keep plain doubles for arithmetic-heavy inner loops
// but provide named conversion helpers and a couple of strong wrapper types
// for API boundaries where unit confusion is most dangerous.
#pragma once

#include <cstdint>

namespace pcal {
namespace units {

inline constexpr double kSecondsPerYear = 365.25 * 24.0 * 3600.0;

constexpr double years_to_seconds(double years) {
  return years * kSecondsPerYear;
}
constexpr double seconds_to_years(double seconds) {
  return seconds / kSecondsPerYear;
}

inline constexpr double kKiB = 1024.0;
constexpr std::uint64_t KiB(std::uint64_t n) { return n * 1024; }

constexpr double nano(double v) { return v * 1e-9; }
constexpr double micro(double v) { return v * 1e-6; }
constexpr double milli(double v) { return v * 1e-3; }
constexpr double pico(double v) { return v * 1e-12; }
constexpr double femto(double v) { return v * 1e-15; }

}  // namespace units

/// Strong type for lifetimes so simulator outputs cannot be silently mixed
/// with raw cycle counts.  Stored in years (the paper's reporting unit).
class Lifetime {
 public:
  Lifetime() = default;
  static Lifetime from_years(double y) { return Lifetime(y); }
  static Lifetime from_seconds(double s) {
    return Lifetime(units::seconds_to_years(s));
  }

  double years() const { return years_; }
  double seconds() const { return units::years_to_seconds(years_); }

  friend bool operator<(Lifetime a, Lifetime b) { return a.years_ < b.years_; }
  friend bool operator>(Lifetime a, Lifetime b) { return b < a; }
  friend bool operator==(Lifetime a, Lifetime b) {
    return a.years_ == b.years_;
  }

 private:
  explicit Lifetime(double y) : years_(y) {}
  double years_ = 0.0;
};

}  // namespace pcal
