#include "util/interp.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace pcal {
namespace {

void check_axis(const std::vector<double>& xs, const char* name) {
  PCAL_ASSERT_MSG(!xs.empty(), "empty axis " << name);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    PCAL_ASSERT_MSG(xs[i] > xs[i - 1],
                    "axis " << name << " not strictly increasing at " << i);
  }
}

/// Returns the left index i of the segment containing x, clamped so that
/// both i and i+1 are valid (for a size-1 axis returns 0 with weight 0).
std::pair<std::size_t, double> segment(const std::vector<double>& xs,
                                       double x) {
  if (xs.size() == 1 || x <= xs.front()) return {0, 0.0};
  if (x >= xs.back()) return {xs.size() - 2, 1.0};
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - xs.begin()) - 1;
  const double t = (x - xs[i]) / (xs[i + 1] - xs[i]);
  return {i, t};
}

}  // namespace

LinearTable1D::LinearTable1D(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  check_axis(xs_, "x");
  PCAL_ASSERT_MSG(xs_.size() == ys_.size(), "axis/value size mismatch");
}

double LinearTable1D::operator()(double x) const {
  PCAL_ASSERT(!xs_.empty());
  if (xs_.size() == 1) return ys_[0];
  const auto [i, t] = segment(xs_, x);
  return ys_[i] + t * (ys_[i + 1] - ys_[i]);
}

BilinearTable2D::BilinearTable2D(std::vector<double> xs,
                                 std::vector<double> ys,
                                 std::vector<double> values_row_major)
    : xs_(std::move(xs)),
      ys_(std::move(ys)),
      values_(std::move(values_row_major)) {
  check_axis(xs_, "x");
  check_axis(ys_, "y");
  PCAL_ASSERT_MSG(values_.size() == xs_.size() * ys_.size(),
                  "value grid size mismatch: " << values_.size() << " != "
                                               << xs_.size() * ys_.size());
}

double BilinearTable2D::at(std::size_t i, std::size_t j) const {
  PCAL_ASSERT(i < xs_.size() && j < ys_.size());
  return values_[i * ys_.size() + j];
}

double BilinearTable2D::operator()(double x, double y) const {
  PCAL_ASSERT(!values_.empty());
  const auto [i, tx] = segment(xs_, x);
  const auto [j, ty] = segment(ys_, y);
  if (xs_.size() == 1 && ys_.size() == 1) return at(0, 0);
  if (xs_.size() == 1) return at(0, j) + ty * (at(0, j + 1) - at(0, j));
  if (ys_.size() == 1) return at(i, 0) + tx * (at(i + 1, 0) - at(i, 0));
  const double z00 = at(i, j), z01 = at(i, j + 1);
  const double z10 = at(i + 1, j), z11 = at(i + 1, j + 1);
  const double z0 = z00 + ty * (z01 - z00);
  const double z1 = z10 + ty * (z11 - z10);
  return z0 + tx * (z1 - z0);
}

void BilinearTable2D::serialize(std::ostream& os) const {
  os.precision(17);
  os << "pcal-bilinear-v1\n" << xs_.size() << ' ' << ys_.size() << '\n';
  for (double v : xs_) os << v << ' ';
  os << '\n';
  for (double v : ys_) os << v << ' ';
  os << '\n';
  for (double v : values_) os << v << ' ';
  os << '\n';
}

BilinearTable2D BilinearTable2D::deserialize(std::istream& is) {
  std::string magic;
  is >> magic;
  if (magic != "pcal-bilinear-v1") throw ParseError("bad table magic");
  std::size_t nx = 0, ny = 0;
  is >> nx >> ny;
  if (!is || nx == 0 || ny == 0) throw ParseError("bad table dimensions");
  std::vector<double> xs(nx), ys(ny), vals(nx * ny);
  for (auto& v : xs) is >> v;
  for (auto& v : ys) is >> v;
  for (auto& v : vals) is >> v;
  if (!is) throw ParseError("truncated table data");
  return BilinearTable2D(std::move(xs), std::move(ys), std::move(vals));
}

}  // namespace pcal
