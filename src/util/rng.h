// Deterministic pseudo-random number generators.
//
// The simulator must be bit-reproducible across runs and platforms, so we do
// not use std::mt19937 distributions (their outputs are implementation
// defined for some distributions).  SplitMix64 seeds; Xoshiro256** is the
// workhorse generator used by the synthetic trace generators.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pcal {

/// SplitMix64: tiny, high-quality seeding generator (Steele et al.).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, well-distributed 64-bit generator (Blackman/Vigna).
class Xoshiro256 {
 public:
  /// Seeds all 256 bits of state from a 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) using rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with probability `p` of returning true.
  bool next_bool(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Precomputed-CDF Zipf sampler: O(log n) per sample via binary search.
/// Ranks 0..n-1 with probability proportional to 1/(rank+1)^s; s = 0 gives
/// the uniform distribution.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  std::uint64_t sample(Xoshiro256& rng) const;

  std::uint64_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pcal
