// Power-state timeline artifact: what every power-management unit was
// doing, interval by interval.
//
// The engines already stream IntervalSnapshots (core/simulator.h) with a
// per-(core, level) power-state census at every re-indexing boundary.  A
// TimelineRecorder is the observer that turns that stream into a durable
// artifact: a versioned JSON document ("pcal-timeline", version 1,
// schema in docs/timeline_schema_v1.json, validated by
// tools/check_timeline_json.py) holding the group table plus one record
// per interval — the compact per-unit state string ("AADG...", one char
// per unit: Awake/Drowsy/Gated), awake/drowsy/gated counts, tag-store
// deltas, stall delta, and an optional per-group energy estimate priced
// by the per-unit model.
//
// Recording is strictly additive: attach the recorder's observer() to a
// run and the run's results are bit-identical to an unobserved run (the
// engines' observer contract); skip the recorder and nothing here
// executes at all — which is what keeps `pcalsim`/`pcalsweep` output
// byte-identical when no timeline is requested.
//
// Threading: one recorder records one run.  In a sweep, give every job
// its own recorder (SweepJob::observer runs on the worker thread that
// owns the job; distinct recorders never share state).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/multicore.h"
#include "core/simulator.h"
#include "power/unit_energy.h"

namespace pcal::api {

/// One row of the artifact's group table: a contiguous run of units and
/// the (core, level) that owns it, copied from the engine's census
/// (core == -1: a single-core run's level, or the shared LLC).
struct TimelineGroup {
  int core = -1;
  std::uint64_t level = 0;
  std::uint64_t first_unit = 0;
  std::uint64_t units = 0;
};

/// One group's slice of one interval record.  Tag-store counters are
/// deltas over the interval (the snapshot census is cumulative; the
/// recorder differences it).
struct TimelineGroupSample {
  std::uint64_t awake = 0;
  std::uint64_t drowsy = 0;
  std::uint64_t gated = 0;
  /// One char per unit, in unit order: 'A' / 'D' / 'G'.
  std::string states;
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  /// Interval energy estimate (pJ): state-weighted leakage over the
  /// interval's span plus the dynamic cost of its accesses, priced by
  /// the per-unit model.  An *estimate* — transition energy is not
  /// attributable per interval — and 0 unless pricing was attached
  /// (price_with()).
  double energy_est_pj = 0.0;
};

struct TimelineInterval {
  /// The snapshot's 1-based boundary index; 0 on the final record (the
  /// engines' final-snapshot convention).
  std::uint64_t interval = 0;
  std::uint64_t cycles = 0;       // wall clock at the boundary
  std::uint64_t span_cycles = 0;  // cycles since the previous record
  std::uint64_t accesses = 0;     // cumulative accesses consumed
  std::uint64_t stall_delta = 0;  // stall cycles charged this interval
  bool fired_update = false;
  bool context_switch = false;
  bool final_snapshot = false;
  /// One sample per group-table row, in order.
  std::vector<TimelineGroupSample> groups;
};

class TimelineRecorder {
 public:
  /// `run_label` names the run in the artifact header ("name" member);
  /// sweeps pass the job's coordinate label.
  explicit TimelineRecorder(std::string run_label = "run");

  /// The observer to attach to Simulator::run / MultiCoreSystem::run /
  /// SweepJob::observer.  Snapshot buffers are engine-owned and reused;
  /// the recorder copies everything it keeps during the callback.
  IntervalObserver observer();

  /// Attaches per-group energy pricing so records carry energy_est_pj:
  /// one UnitEnergyModel per group-table row, derived from the run's
  /// config (levels in group order; the MultiCoreConfig overload prices
  /// depth-major private levels then the shared LLC).  Optional — an
  /// unpriced recorder emits energy_est_pj = 0.
  void price_with(const SimConfig& config);
  void price_with(const MultiCoreConfig& config);

  const std::string& run_label() const { return run_label_; }
  /// Renames the artifact; callers often know the best name (workload,
  /// resolved config label) only after the run finished.
  void set_run_label(std::string label) { run_label_ = std::move(label); }
  const std::vector<TimelineGroup>& groups() const { return groups_; }
  const std::vector<TimelineInterval>& intervals() const {
    return intervals_;
  }

  /// Writes the versioned JSON artifact (schema "pcal-timeline",
  /// version 1 — docs/timeline_schema_v1.json).
  void write_json(std::ostream& os) const;
  /// As above, to a file; throws Error when the file cannot be written.
  void write_json_file(const std::string& path) const;

 private:
  void record(const IntervalSnapshot& snap);

  std::string run_label_;
  std::vector<TimelineGroup> groups_;
  std::vector<TimelineInterval> intervals_;
  std::vector<UnitEnergyModel> models_;  // one per group when priced
  std::vector<CacheStats> prev_stats_;   // per group, cumulative
  std::uint64_t prev_cycles_ = 0;
  std::uint64_t prev_stalls_ = 0;
};

/// The artifact's schema identity, shared with the validator.
inline constexpr const char kTimelineSchema[] = "pcal-timeline";
inline constexpr int kTimelineVersion = 1;

}  // namespace pcal::api
