#include "api/pcal.h"

#include <memory>
#include <sstream>
#include <utility>

#include "core/bench_record.h"
#include "core/experiment.h"
#include "core/run_assembly.h"
#include "util/error.h"

namespace pcal::api {

namespace {

/// Default workload of a RunConfig without a "workload" entry — the
/// cheapest synthetic stream, so `run(RunConfig{})` is meaningful.
const char kDefaultWorkload[] = "uniform";

/// Applies every entry to one RunAssembly; throws on the first problem
/// (the run() path — validate() collects instead).
RunAssembly assemble_from(const RunConfig& config) {
  RunAssembly asmb;
  for (const auto& [key, value] : config.entries()) asmb.set(key, value);
  return asmb;
}

}  // namespace

std::string describe(const std::vector<ConfigIssue>& issues) {
  std::string out;
  for (const ConfigIssue& issue : issues) {
    if (!out.empty()) out += '\n';
    if (!issue.key.empty()) {
      out += issue.key;
      if (!issue.value.empty()) out += " = " + issue.value;
      out += ": ";
    }
    out += issue.reason;
  }
  return out;
}

RunConfig& RunConfig::set(std::string key, std::string value) {
  entries_.emplace_back(std::move(key), std::move(value));
  return *this;
}

bool RunConfig::knows(const std::string& key) {
  return RunAssembly::knows(key);
}

std::vector<ConfigIssue> RunConfig::validate() const {
  std::vector<ConfigIssue> issues;
  RunAssembly asmb;
  for (const auto& [key, value] : entries_) {
    try {
      asmb.set(key, value);
    } catch (const Error& e) {
      issues.push_back({key, value, e.what()});
    }
  }
  // The assembled whole (level stacking, multi-core wiring) — reported
  // against no single entry.  Skipped when entries already failed: the
  // staged state is partial and the follow-on error would be noise.
  if (issues.empty()) {
    try {
      (void)asmb.assemble();
    } catch (const Error& e) {
      issues.push_back({"", "", e.what()});
    }
  }
  // Workload resolution, exactly as the sweep grid would do it (named
  // workloads, trace files validated by header, multiprog specs parsed).
  const auto check_workload = [&](const std::string& key,
                                  const std::string& value) {
    try {
      (void)make_workload_factory(value, asmb.accesses(),
                                  asmb.footprint_bytes());
    } catch (const Error& e) {
      issues.push_back({key, value, e.what()});
    }
  };
  if (!asmb.workload().empty()) check_workload("workload", asmb.workload());
  for (const auto& [core, workload] : asmb.core_workloads())
    check_workload("core" + std::to_string(core) + "_workload", workload);
  return issues;
}

RunOutput run(const RunConfig& config, const RunOptions& options) {
  RunAssembly asmb = assemble_from(config);
  RunAssembly::Assembled assembled = asmb.assemble();
  const std::uint64_t accesses = asmb.accesses();
  const std::string workload =
      asmb.workload().empty() ? kDefaultWorkload : asmb.workload();
  const AgingLut* lut = options.aging ? &shared_aging().lut() : nullptr;

  RunOutput out;
  if (assembled.multicore) {
    const std::size_t num_cores = assembled.multicore->cores.size();
    std::vector<std::unique_ptr<TraceSource>> owned;
    std::vector<TraceSource*> sources;
    owned.reserve(num_cores);
    sources.reserve(num_cores);
    for (std::size_t k = 0; k < num_cores; ++k) {
      const auto it = asmb.core_workloads().find(static_cast<int>(k));
      const std::string& value =
          it != asmb.core_workloads().end() ? it->second : workload;
      owned.push_back(
          make_workload_factory(value, accesses, asmb.footprint_bytes())());
      sources.push_back(owned.back().get());
    }
    MultiCoreResult mc = MultiCoreSystem(std::move(*assembled.multicore))
                             .run(sources, lut, options.observer);
    out.result = std::move(mc.system);
    out.cores = std::move(mc.cores);
  } else {
    std::unique_ptr<TraceSource> source =
        make_workload_factory(workload, accesses, asmb.footprint_bytes())();
    out.result =
        Simulator(assembled.config).run(*source, lut, options.observer);
  }
  return out;
}

std::string GridRun::result_row(std::size_t i) const {
  const SweepOutcome& outcome = outcomes.at(i);
  std::ostringstream os;
  write_result_row(os, outcome.result, jobs.at(i).workload, outcome.ok(),
                   outcome.cores.empty() ? nullptr : &outcome.cores,
                   static_cast<long>(i));
  return os.str();
}

GridRun run_grid(const GridSpec& spec, const GridOptions& options) {
  GridRun out;
  out.jobs = spec.expand();
  const AgingLut* lut = options.aging ? &shared_aging().lut() : nullptr;

  std::vector<SweepJob> sweep_jobs;
  sweep_jobs.reserve(out.jobs.size());
  for (std::size_t i = 0; i < out.jobs.size(); ++i) {
    const GridJob& job = out.jobs[i];
    SweepJob j;
    j.config = job.config;
    j.make_source = job.make_source;
    j.label = spec.job_label(job);
    j.lut = lut;
    j.multicore = job.multicore;
    j.core_sources = job.core_sources;
    if (options.make_observer) j.observer = options.make_observer(i);
    sweep_jobs.push_back(std::move(j));
  }

  SweepRunner runner(options.workers);
  out.outcomes = runner.run(sweep_jobs);
  out.stats = runner.last_stats();

  std::ostringstream table;
  spec.render_table(out.jobs, out.outcomes).render(table);
  out.table = table.str();
  return out;
}

GridRun run_grid_text(const std::string& spec_text, const GridOptions& options,
                      const std::string& name) {
  std::istringstream is{spec_text};
  return run_grid(GridSpec::parse(is, name), options);
}

const AgingContext& shared_aging() {
  static const AgingContext context;
  return context;
}

const char* version() { return "1.0"; }

}  // namespace pcal::api
