#include "api/timeline.h"

#include <fstream>
#include <ostream>
#include <utility>

#include "core/bench_record.h"
#include "util/error.h"

namespace pcal::api {

TimelineRecorder::TimelineRecorder(std::string run_label)
    : run_label_(std::move(run_label)) {}

IntervalObserver TimelineRecorder::observer() {
  return [this](const IntervalSnapshot& snap) { record(snap); };
}

void TimelineRecorder::price_with(const SimConfig& config) {
  models_.clear();
  // Level 0 with the breakeven the run will actually use (override,
  // legacy bank model, or the per-unit gate breakeven).
  models_.emplace_back(config.energy_params, config.tech,
                       config.topology(Simulator(config).breakeven_cycles()));
  for (const LevelConfig& level : config.enabled_lower_levels())
    models_.emplace_back(config.energy_params, config.tech, level.topology);
}

void TimelineRecorder::price_with(const MultiCoreConfig& config) {
  models_.clear();
  // Depth-major, matching the engine's census: every core's level d,
  // then the next depth, then the shared LLC last.
  const std::size_t depth =
      config.cores.empty() ? 0 : config.cores.front().levels.size();
  for (std::size_t d = 0; d < depth; ++d)
    for (const MultiCoreConfig::Core& core : config.cores)
      models_.emplace_back(config.energy_params, config.tech,
                           core.levels[d].topology);
  models_.emplace_back(config.energy_params, config.tech,
                       config.llc.topology);
}

void TimelineRecorder::record(const IntervalSnapshot& snap) {
  if (snap.groups == nullptr || snap.unit_states == nullptr) return;
  if (groups_.empty()) {
    groups_.reserve(snap.groups->size());
    for (const UnitGroupStates& g : *snap.groups)
      groups_.push_back({g.core, g.level, g.first_unit, g.units});
    prev_stats_.resize(snap.groups->size());
  }

  TimelineInterval rec;
  rec.interval = snap.interval;
  rec.cycles = snap.cycles;
  rec.span_cycles = snap.cycles >= prev_cycles_ ? snap.cycles - prev_cycles_
                                                : 0;
  rec.accesses = snap.accesses;
  rec.stall_delta =
      snap.stall_cycles >= prev_stalls_ ? snap.stall_cycles - prev_stalls_ : 0;
  rec.fired_update = snap.fired_update;
  rec.context_switch = snap.context_switch;
  rec.final_snapshot = snap.final_snapshot;

  rec.groups.reserve(snap.groups->size());
  const bool priced = models_.size() == snap.groups->size();
  for (std::size_t i = 0; i < snap.groups->size(); ++i) {
    const UnitGroupStates& g = (*snap.groups)[i];
    TimelineGroupSample sample;
    sample.awake = g.awake;
    sample.drowsy = g.drowsy;
    sample.gated = g.gated;
    sample.states.reserve(g.units);
    for (std::uint64_t u = 0; u < g.units; ++u)
      sample.states += to_char((*snap.unit_states)[g.first_unit + u]);
    if (i < prev_stats_.size()) {
      const CacheStats& prev = prev_stats_[i];
      sample.accesses = g.stats.accesses - prev.accesses;
      sample.hits = g.stats.hits - prev.hits;
      sample.misses = g.stats.misses - prev.misses;
      sample.writebacks = g.stats.writebacks - prev.writebacks;
      prev_stats_[i] = g.stats;
    }
    if (priced) {
      const UnitEnergyModel& model = models_[i];
      const double leak_mw =
          static_cast<double>(sample.awake) * model.unit_leak_mw() +
          static_cast<double>(sample.drowsy) * model.unit_drowsy_mw() +
          static_cast<double>(sample.gated) * model.unit_gated_mw();
      // mW x ns = pJ: leakage over the span at the boundary's state mix,
      // plus the interval's dynamic accesses.
      sample.energy_est_pj =
          leak_mw * static_cast<double>(rec.span_cycles) * model.clock_ns() +
          static_cast<double>(sample.accesses) * model.access_energy_pj();
    }
    rec.groups.push_back(std::move(sample));
  }

  prev_cycles_ = snap.cycles;
  prev_stalls_ = snap.stall_cycles;
  intervals_.push_back(std::move(rec));
}

void TimelineRecorder::write_json(std::ostream& os) const {
  os << "{\n"
     << "  \"schema\": \"" << kTimelineSchema << "\",\n"
     << "  \"version\": " << kTimelineVersion << ",\n"
     << "  \"name\": \"" << json_escape(run_label_) << "\",\n"
     << "  \"groups\": [";
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    const TimelineGroup& g = groups_[i];
    os << (i ? ",\n    " : "\n    ") << "{\"core\": " << g.core
       << ", \"level\": " << g.level << ", \"first_unit\": " << g.first_unit
       << ", \"units\": " << g.units << "}";
  }
  os << (groups_.empty() ? "]" : "\n  ]") << ",\n  \"intervals\": [";
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const TimelineInterval& rec = intervals_[i];
    os << (i ? ",\n    " : "\n    ") << "{\"interval\": " << rec.interval
       << ", \"cycles\": " << rec.cycles
       << ", \"span_cycles\": " << rec.span_cycles
       << ", \"accesses\": " << rec.accesses
       << ", \"stall_delta\": " << rec.stall_delta << ", \"fired_update\": "
       << (rec.fired_update ? "true" : "false") << ", \"context_switch\": "
       << (rec.context_switch ? "true" : "false")
       << ", \"final\": " << (rec.final_snapshot ? "true" : "false")
       << ",\n     \"groups\": [";
    for (std::size_t k = 0; k < rec.groups.size(); ++k) {
      const TimelineGroupSample& s = rec.groups[k];
      os << (k ? ",\n       " : "\n       ") << "{\"states\": \"" << s.states
         << "\", \"awake\": " << s.awake << ", \"drowsy\": " << s.drowsy
         << ", \"gated\": " << s.gated << ", \"accesses\": " << s.accesses
         << ", \"hits\": " << s.hits << ", \"misses\": " << s.misses
         << ", \"writebacks\": " << s.writebacks
         << ", \"energy_est_pj\": " << s.energy_est_pj << "}";
    }
    os << (rec.groups.empty() ? "]}" : "\n     ]}");
  }
  os << (intervals_.empty() ? "]" : "\n  ]") << "\n}\n";
}

void TimelineRecorder::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("cannot write timeline file " + path);
  write_json(f);
  if (!f) throw Error("failed writing timeline file " + path);
}

}  // namespace pcal::api
