// Embeddable library surface: one header for driving pcal from C++ (and,
// through bindings/, from Python) without touching the engine headers.
//
// The facade speaks the flat "key = value" vocabulary every front-end
// shares (core/run_assembly.h): a RunConfig is an ordered bag of entries,
// validate() turns mistakes into structured ConfigIssue records instead
// of exceptions (every problem reported, not just the first), run()
// executes one configuration through the same Simulator/MultiCoreSystem
// path pcalsim takes, and run_grid() executes a declarative sweep spec
// through the same GridSpec + SweepRunner path pcalsweep takes —
// GridRun::result_row() reproduces pcalsweep's BENCH JSON result rows
// byte for byte, which is what the bindings' parity tests pin.
//
// Everything here is a thin, value-typed veneer: the engine types
// (SimResult, CoreResult, SweepOutcome) pass through unwrapped so an
// embedder graduates to the engine headers without a rewrite.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/grid_spec.h"
#include "core/multicore.h"
#include "core/simulator.h"
#include "core/sweep.h"

namespace pcal {

class AgingContext;

namespace api {

/// One structured validation finding: the offending key, the value it
/// carried ("" for problems of the assembled whole, e.g. a missing
/// llc_size), and the human-readable reason.
struct ConfigIssue {
  std::string key;
  std::string value;
  std::string reason;
};

/// Renders issues one per line ("key = value: reason") for error logs.
std::string describe(const std::vector<ConfigIssue>& issues);

/// An ordered bag of "key = value" entries in the shared sweep-axis
/// vocabulary (cache_size, banks, policy, l2_size, cores, llc_size,
/// workload, accesses, ... — see core/run_assembly.h).  Later entries
/// override earlier ones key-wise, exactly as repeated sweep axes would.
class RunConfig {
 public:
  /// Appends one entry.  Never throws — malformed keys and values are
  /// reported by validate() (and by run(), which throws).
  RunConfig& set(std::string key, std::string value);

  /// True iff the shared vocabulary knows this key.
  static bool knows(const std::string& key);

  /// Every entry, in insertion order.
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// Checks every entry and the assembled whole without throwing:
  /// unknown keys, malformed values, invalid combinations (e.g. cores
  /// without llc_size) and unresolvable workloads each yield one
  /// ConfigIssue.  Empty result == run() will not throw a config error.
  std::vector<ConfigIssue> validate() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct RunOptions {
  /// Attach the process-wide calibrated aging LUT so the result carries
  /// per-unit and whole-cache lifetimes (the paper's LT columns).  The
  /// LUT is built once per process on first use (a few hundred ms).
  bool aging = true;
  /// Optional interval observer (core/simulator.h) — timeline recorders
  /// attach here.
  IntervalObserver observer;
};

struct RunOutput {
  /// The system-wide result (for multi-core runs: the depth-major
  /// MultiCoreResult::system view).
  SimResult result;
  /// Per-core slices of a multi-core run; empty for single-stream runs.
  std::vector<CoreResult> cores;
};

/// Runs one configuration end to end: workload resolution exactly as the
/// sweep grid ("workload" entry; default "uniform"), single-stream
/// Simulator or — when `cores` > 0 — MultiCoreSystem with per-core
/// workload overrides.  Throws ConfigError / ParseError on invalid
/// configs (pre-flight with validate() for structured errors).
RunOutput run(const RunConfig& config, const RunOptions& options = {});

struct GridOptions {
  /// Worker threads; 0 picks SweepRunner::default_threads()
  /// (PCAL_SWEEP_THREADS or hardware concurrency).  Outcomes are
  /// bit-identical at any worker count.
  unsigned workers = 0;
  /// Attach the aging LUT to every job (as pcalsweep does).
  bool aging = true;
  /// Optional per-job observer factory, called with the job's index
  /// before the sweep starts; a returned observer runs on the worker
  /// thread that executes the job.  Timeline recorders attach here.
  std::function<IntervalObserver(std::size_t)> make_observer;
};

/// Everything a finished grid run yields, in job order.
struct GridRun {
  std::vector<GridJob> jobs;           // the expanded grid points
  std::vector<SweepOutcome> outcomes;  // one per job, by index
  SweepStats stats;
  /// The rendered result table ([table] pivot or one row per job) —
  /// exactly pcalsweep's stdout table.
  std::string table;

  /// BENCH-parity JSON result row of job `i` — byte-identical to the
  /// "results" array entries pcalsweep writes for the same spec.
  std::string result_row(std::size_t i) const;

  std::size_t failed_jobs() const { return stats.failed_jobs; }
};

/// Expands `spec` and runs every grid point on `workers` threads —
/// pcalsweep's execution path (labels, aging LUT, job order) without the
/// CLI, journaling or BENCH-file plumbing.  Throws ConfigError /
/// ParseError on specs that fail to expand.
GridRun run_grid(const GridSpec& spec, const GridOptions& options = {});

/// Convenience: parses a spec from text (the .sweep file format), then
/// runs it.  `name` seeds the grid name when the spec has none.
GridRun run_grid_text(const std::string& spec_text,
                      const GridOptions& options = {},
                      const std::string& name = "api");

/// The process-wide calibrated aging context (built once, lazily, behind
/// a magic static; thread-safe).  Exposed so embedders composing their
/// own Simulator runs share the LUT with run()/run_grid().
const AgingContext& shared_aging();

/// Library version string ("<major>.<minor>"), bumped with the facade.
const char* version();

}  // namespace api
}  // namespace pcal
