#include "cache/cache.h"

#include <sstream>

namespace pcal {

std::string CacheConfig::describe() const {
  std::ostringstream os;
  os << size_bytes / 1024 << "kB/" << line_bytes << "B";
  if (ways > 1)
    os << "/" << ways << "way";
  else
    os << "/DM";
  return os.str();
}

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
  config_.validate();
  ways_.resize(config_.num_sets() * config_.ways);
}

CacheAccessResult CacheModel::access(std::uint64_t tag, std::uint64_t set,
                                     bool is_write, std::uint64_t address) {
  PCAL_ASSERT_MSG(set < config_.num_sets(),
                  "set " << set << " out of range " << config_.num_sets());
  ++stats_.accesses;
  ++lru_clock_;
  Way* base = &ways_[set * config_.ways];
  Way* victim = nullptr;
  for (std::uint64_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      ++stats_.hits;
      way.lru = lru_clock_;
      if (is_write) way.dirty = true;
      return {true, false, w, false, 0};
    }
    // Only allocatable ways (the alloc mask; ways >= 64 always qualify)
    // compete for the victim slot — hits above are mask-blind.
    if (w < 64 && !(alloc_mask_ >> w & 1)) continue;
    // Track the replacement victim: first invalid way wins, else oldest.
    if (victim == nullptr) {
      victim = &way;
    } else if (!way.valid) {
      if (victim->valid) victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++stats_.misses;
  PCAL_ASSERT_MSG(victim != nullptr,
                  "allocation way mask selects no way in set " << set);
  const bool evicted = victim->valid;
  const bool writeback = evicted && victim->dirty;
  const std::uint64_t victim_address = evicted ? victim->address : 0;
  if (writeback) ++stats_.writebacks;
  victim->valid = true;
  victim->tag = tag;
  victim->address = address & ~(config_.line_bytes - 1);
  victim->dirty = is_write;
  victim->lru = lru_clock_;
  return {false, writeback, static_cast<std::uint64_t>(victim - base),
          evicted, victim_address};
}

CacheAccessResult CacheModel::access_address(std::uint64_t address,
                                             bool is_write) {
  return access(config_.tag_of(address), config_.set_index_of(address),
                is_write, address);
}

CacheAccessResult CacheModel::probe(std::uint64_t tag, std::uint64_t set) {
  PCAL_ASSERT_MSG(set < config_.num_sets(),
                  "set " << set << " out of range " << config_.num_sets());
  ++stats_.accesses;
  ++lru_clock_;
  Way* base = &ways_[set * config_.ways];
  for (std::uint64_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      ++stats_.hits;
      way.lru = lru_clock_;
      return {true, false, w, false, 0};
    }
  }
  ++stats_.misses;
  return {false, false, 0, false, 0};
}

void CacheModel::set_alloc_way_mask(std::uint64_t mask) {
  const std::uint64_t usable =
      config_.ways >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << config_.ways) - 1;
  PCAL_ASSERT_MSG((mask & usable) != 0,
                  "allocation way mask selects none of the "
                      << config_.ways << " configured ways");
  alloc_mask_ = mask;
}

std::uint64_t CacheModel::flush() {
  std::uint64_t dirty = 0;
  for (Way& w : ways_) {
    if (w.valid && w.dirty) ++dirty;
    w = Way{};
  }
  ++stats_.flushes;
  stats_.flushed_dirty += dirty;
  return dirty;
}

bool CacheModel::invalidate(std::uint64_t tag, std::uint64_t set) {
  PCAL_ASSERT(set < config_.num_sets());
  Way* base = &ways_[set * config_.ways];
  for (std::uint64_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w] = Way{};
      return true;
    }
  }
  return false;
}

bool CacheModel::contains(std::uint64_t tag, std::uint64_t set) const {
  PCAL_ASSERT(set < config_.num_sets());
  const Way* base = &ways_[set * config_.ways];
  for (std::uint64_t w = 0; w < config_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

std::uint64_t CacheModel::valid_lines() const {
  std::uint64_t n = 0;
  for (const Way& w : ways_)
    if (w.valid) ++n;
  return n;
}

}  // namespace pcal
