// Behavioral cache model.
//
// A set-indexed tag store with optional associativity (LRU replacement) and
// write-back dirty tracking.  The banked wrapper in src/bank supplies
// *physical* set indices after dynamic re-indexing, so the access entry
// point takes (tag, set) rather than a raw address; address-based access is
// provided for monolithic use.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_config.h"

namespace pcal {

struct CacheAccessResult {
  bool hit = false;
  bool writeback = false;  // a dirty victim was evicted
  /// Way within the set that served the access (the hitting way, or the
  /// replacement victim on a miss).  0 for direct-mapped caches; lets
  /// way-grain power management attribute the access to its unit.
  std::uint64_t way = 0;
  /// A valid line (dirty or clean) was evicted to make room.  Its
  /// line-aligned address is `victim_address` — only meaningful when the
  /// caller supplies addresses to access() (hierarchy levels do; legacy
  /// (tag, set)-only callers get 0).
  bool evicted = false;
  std::uint64_t victim_address = 0;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;       // dirty evictions (capacity/conflict)
  std::uint64_t flushes = 0;          // whole-cache flushes
  std::uint64_t flushed_dirty = 0;    // dirty lines written back by flushes

  double hit_rate() const {
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  double miss_rate() const { return accesses ? 1.0 - hit_rate() : 0.0; }
};

class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }

  /// Access by pre-computed (tag, set).  `set` must be < num_sets().
  /// `address` is remembered per line so evictions can report their
  /// victim's address (dynamic re-indexing makes the (tag, set) -> address
  /// inverse time-varying, so the original address is stored, not
  /// reconstructed); pass 0 when the eviction stream is not consumed.
  CacheAccessResult access(std::uint64_t tag, std::uint64_t set,
                           bool is_write, std::uint64_t address = 0);

  /// Lookup without allocation: counts one access and a hit/miss, touches
  /// LRU on a hit, but a miss installs nothing and evicts nothing.  The
  /// exclusive-hierarchy probe — the line, if absent, stays absent.
  CacheAccessResult probe(std::uint64_t tag, std::uint64_t set);

  /// Convenience for monolithic (non-banked) use: derives tag/set from the
  /// address per the configured geometry.
  CacheAccessResult access_address(std::uint64_t address, bool is_write);

  /// Restricts *allocation* (miss-victim choice) to the ways whose mask
  /// bit is set.  Hits are served from any way — a line resident outside
  /// the mask is still found and touched — which is the standard
  /// way-partitioning semantics a shared LLC uses for QoS isolation
  /// (core/multicore.h).  The full mask (the default) is the unmasked
  /// victim loop, bit for bit.  The mask must select at least one of the
  /// configured ways.
  void set_alloc_way_mask(std::uint64_t mask);
  std::uint64_t alloc_way_mask() const { return alloc_mask_; }

  /// Invalidates everything; returns the number of dirty lines flushed
  /// (they would be written back to the next level).
  std::uint64_t flush();

  /// Drops (tag, set) from the tag store if resident: a pure tag-store
  /// operation — no access counted, no LRU touch, and a dirty line is
  /// dropped without a writeback (the hierarchy's back-invalidation
  /// approximation; see core/hierarchy.h).  Returns true iff a line was
  /// invalidated.
  bool invalidate(std::uint64_t tag, std::uint64_t set);

  /// True iff (tag, set) is currently resident.
  bool contains(std::uint64_t tag, std::uint64_t set) const;

  /// Number of currently valid lines (for occupancy diagnostics).
  std::uint64_t valid_lines() const;

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t address = 0;  // line-aligned, for victim reporting
    std::uint64_t lru = 0;      // higher = more recently used
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::vector<Way> ways_;  // num_sets * ways, set-major
  std::uint64_t lru_clock_ = 0;
  /// Allocation (victim-choice) way mask; ways >= 64 are always
  /// allocatable (the mask cannot name them).
  std::uint64_t alloc_mask_ = ~std::uint64_t{0};
  CacheStats stats_;
};

}  // namespace pcal
