// Cache geometry configuration.
//
// The paper's experiments use direct-mapped caches of 8/16/32kB with 16 or
// 32-byte lines; the model also supports set-associativity as an extension.
// All geometry parameters must be powers of two, matching the hardware
// constraint the paper leans on ("M = 2^p for obvious practical reasons").
#pragma once

#include <cstdint>
#include <string>

#include "util/bitops.h"
#include "util/error.h"

namespace pcal {

struct CacheConfig {
  std::uint64_t size_bytes = 16 * 1024;
  std::uint64_t line_bytes = 16;
  std::uint64_t ways = 1;          // 1 = direct-mapped
  unsigned address_bits = 32;      // physical address width, for tag sizing

  // ---- derived geometry ----

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / ways; }
  /// n in the paper: number of index bits (direct-mapped: log2(num_lines)).
  unsigned index_bits() const { return log2_exact(num_sets()); }
  unsigned offset_bits() const { return log2_exact(line_bytes); }
  /// Tag bits stored per line.  Grows when the index shrinks (bigger lines
  /// or higher associativity), which is what makes tag arrays relatively
  /// more expensive at 32B lines (paper, Table III discussion).
  unsigned tag_bits() const {
    return address_bits - index_bits() - offset_bits();
  }

  std::uint64_t set_index_of(std::uint64_t address) const {
    return (address >> offset_bits()) & low_mask(index_bits());
  }
  std::uint64_t tag_of(std::uint64_t address) const {
    return address >> (offset_bits() + index_bits());
  }

  void validate() const {
    PCAL_CONFIG_CHECK(is_pow2(size_bytes), "cache size must be a power of 2");
    PCAL_CONFIG_CHECK(is_pow2(line_bytes) && line_bytes >= 4,
                      "line size must be a power of 2 and >= 4 bytes");
    PCAL_CONFIG_CHECK(is_pow2(ways) && ways >= 1,
                      "associativity must be a power of 2");
    PCAL_CONFIG_CHECK(size_bytes >= line_bytes * ways,
                      "cache must hold at least one set");
    PCAL_CONFIG_CHECK(address_bits >= index_bits() + offset_bits() + 1,
                      "address width too small for this geometry");
    PCAL_CONFIG_CHECK(address_bits <= 48, "address width too large");
  }

  std::string describe() const;
};

}  // namespace pcal
