// Scrambling indexing (paper Fig. 3b).
//
// XORs the p-bit logical bank number with a pseudo-random pattern drawn
// from an LFSR that steps on every update — the de-correlation idea of
// XOR-based placement functions [21] applied at bank granularity.  XOR with
// a constant is always a permutation of [0, M), so correctness needs no
// further argument; uniformity is only asymptotic and depends on the LFSR's
// repetition error (paper §IV-B.2: error ∝ 1/√N over N updates).
#pragma once

#include "indexing/index_policy.h"
#include "util/lfsr.h"

namespace pcal {

class ScramblingIndexing final : public IndexingPolicy {
 public:
  /// `seed` must be nonzero; it seeds the LFSR.
  ScramblingIndexing(std::uint64_t num_banks, std::uint64_t seed = 1);

  std::uint64_t map_bank(std::uint64_t logical_bank) const override;
  void update() override;
  void reset() override;
  std::uint64_t num_banks() const override { return num_banks_; }
  std::uint64_t updates() const override { return updates_; }
  std::string name() const override { return "scrambling"; }
  std::unique_ptr<IndexingPolicy> clone() const override;

  /// Current XOR pattern (p bits).
  std::uint64_t pattern() const { return pattern_; }

 private:
  std::uint64_t num_banks_;
  std::uint64_t seed_;
  GaloisLfsr lfsr_;
  std::uint64_t pattern_ = 0;  // time-zero mapping is the identity
  std::uint64_t updates_ = 0;
};

}  // namespace pcal
