// Identity indexing: the conventional power-managed partitioned cache.
//
// This is the paper's baseline "LT0" architecture: banks are power managed
// but addresses never move, so the least-idle bank ages fastest and caps
// the whole cache's lifetime.
#pragma once

#include "indexing/index_policy.h"

namespace pcal {

class StaticIndexing final : public IndexingPolicy {
 public:
  explicit StaticIndexing(std::uint64_t num_banks);

  std::uint64_t map_bank(std::uint64_t logical_bank) const override;
  void update() override { ++updates_; }  // mapping is time invariant
  void reset() override { updates_ = 0; }
  std::uint64_t num_banks() const override { return num_banks_; }
  std::uint64_t updates() const override { return updates_; }
  std::string name() const override { return "static"; }
  std::unique_ptr<IndexingPolicy> clone() const override;

 private:
  std::uint64_t num_banks_;
  std::uint64_t updates_ = 0;
};

}  // namespace pcal
