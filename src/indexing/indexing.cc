#include "indexing/index_policy.h"

#include <algorithm>

#include "indexing/probing.h"
#include "indexing/scrambling.h"
#include "indexing/static_indexing.h"
#include "util/bitops.h"
#include "util/error.h"

namespace pcal {
namespace {

void check_banks(std::uint64_t m) {
  PCAL_CONFIG_CHECK(is_pow2(m), "bank count must be a power of two, got " << m);
}

}  // namespace

std::unique_ptr<IndexingPolicy> make_indexing_policy(IndexingKind kind,
                                                     std::uint64_t num_banks,
                                                     std::uint64_t seed) {
  check_banks(num_banks);
  switch (kind) {
    case IndexingKind::kStatic:
      return std::make_unique<StaticIndexing>(num_banks);
    case IndexingKind::kProbing:
      return std::make_unique<ProbingIndexing>(num_banks);
    case IndexingKind::kScrambling:
      return std::make_unique<ScramblingIndexing>(num_banks, seed);
  }
  throw ConfigError("unknown indexing kind");
}

// ---- StaticIndexing ----

StaticIndexing::StaticIndexing(std::uint64_t num_banks)
    : num_banks_(num_banks) {
  check_banks(num_banks_);
}

std::uint64_t StaticIndexing::map_bank(std::uint64_t logical_bank) const {
  PCAL_ASSERT(logical_bank < num_banks_);
  return logical_bank;
}

std::unique_ptr<IndexingPolicy> StaticIndexing::clone() const {
  return std::make_unique<StaticIndexing>(*this);
}

// ---- ProbingIndexing ----

ProbingIndexing::ProbingIndexing(std::uint64_t num_banks)
    : num_banks_(num_banks) {
  check_banks(num_banks_);
}

std::uint64_t ProbingIndexing::map_bank(std::uint64_t logical_bank) const {
  PCAL_ASSERT(logical_bank < num_banks_);
  // Truncation to p bits realizes the mod-M wrap, exactly as the p-bit
  // adder of Fig. 3a does.
  return (logical_bank + offset_) & (num_banks_ - 1);
}

void ProbingIndexing::update() {
  offset_ = (offset_ + 1) & (num_banks_ - 1);
  ++updates_;
}

void ProbingIndexing::reset() {
  offset_ = 0;
  updates_ = 0;
}

std::unique_ptr<IndexingPolicy> ProbingIndexing::clone() const {
  return std::make_unique<ProbingIndexing>(*this);
}

// ---- ScramblingIndexing ----

namespace {

// LFSR width for a p-bit XOR pattern.  Deliberately wider than p: a
// maximal LFSR of width exactly p never visits state 0, so truncating a
// width-p register would *never* produce the identity pattern and the
// physical bank equal to each logical bank would be systematically
// under-rotated (measurably worse idleness balance for small M).  Taking
// the low p bits of a wider maximal sequence makes all 2^p patterns,
// including 0, appear near-uniformly.
unsigned scrambling_lfsr_width(std::uint64_t num_banks) {
  const unsigned p = log2_exact(num_banks == 1 ? 2 : num_banks);
  return std::min(24u, std::max(2u, p) + 8u);
}

}  // namespace

ScramblingIndexing::ScramblingIndexing(std::uint64_t num_banks,
                                       std::uint64_t seed)
    : num_banks_(num_banks),
      seed_(seed),
      lfsr_(scrambling_lfsr_width(num_banks), seed) {
  check_banks(num_banks_);
}

std::uint64_t ScramblingIndexing::map_bank(std::uint64_t logical_bank) const {
  PCAL_ASSERT(logical_bank < num_banks_);
  return (logical_bank ^ pattern_) & (num_banks_ - 1);
}

void ScramblingIndexing::update() {
  pattern_ = lfsr_.step();
  ++updates_;
}

void ScramblingIndexing::reset() {
  lfsr_ = GaloisLfsr(lfsr_.width(), seed_);
  pattern_ = 0;
  updates_ = 0;
}

std::unique_ptr<IndexingPolicy> ScramblingIndexing::clone() const {
  return std::make_unique<ScramblingIndexing>(*this);
}

}  // namespace pcal
