// Probing indexing (paper Fig. 3a).
//
// Mimics linear probing in open-addressed hash tables: logical bank i maps
// to physical bank (i + c) mod M, where c is a p-bit counter incremented by
// every update.  In hardware this is a p-bit adder; modulo-M wraps for free
// by truncation.  The paper notes (via [7]) that an increment of 1 gives a
// *perfectly uniform* distribution of idleness once at least M updates have
// been applied — each logical bank visits every physical slot equally.
#pragma once

#include "indexing/index_policy.h"

namespace pcal {

class ProbingIndexing final : public IndexingPolicy {
 public:
  explicit ProbingIndexing(std::uint64_t num_banks);

  std::uint64_t map_bank(std::uint64_t logical_bank) const override;
  void update() override;
  void reset() override;
  std::uint64_t num_banks() const override { return num_banks_; }
  std::uint64_t updates() const override { return updates_; }
  std::string name() const override { return "probing"; }
  std::unique_ptr<IndexingPolicy> clone() const override;

  /// Current rotation offset (the p-bit counter value).
  std::uint64_t offset() const { return offset_; }

 private:
  std::uint64_t num_banks_;
  std::uint64_t offset_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace pcal
