// Time-varying bank indexing policies (the paper's f(), Fig. 2).
//
// The decoder extracts the p MSBs of the cache index as the *logical* bank
// number; an IndexingPolicy maps it to a *physical* bank.  Every `update()`
// changes the mapping (and requires a cache flush, handled by the
// simulator / BankedCache).  A policy must always be a permutation of
// [0, M): every logical bank maps to exactly one physical bank, or lines
// would collide after remapping.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace pcal {

class IndexingPolicy {
 public:
  virtual ~IndexingPolicy() = default;

  /// Maps a logical bank in [0, M) to a physical bank in [0, M).
  virtual std::uint64_t map_bank(std::uint64_t logical_bank) const = 0;

  /// Advances the time-varying mapping (paper: the `update` signal).
  virtual void update() = 0;

  /// Restores the time-zero mapping.
  virtual void reset() = 0;

  /// Number of banks M.
  virtual std::uint64_t num_banks() const = 0;

  /// Number of updates applied since reset.
  virtual std::uint64_t updates() const = 0;

  virtual std::string name() const = 0;

  virtual std::unique_ptr<IndexingPolicy> clone() const = 0;
};

enum class IndexingKind : std::uint8_t {
  kStatic = 0,     // identity forever (conventional partitioned cache)
  kProbing = 1,    // +counter mod M (Fig. 3a)
  kScrambling = 2, // XOR with LFSR state (Fig. 3b)
};

/// Builds a policy for M banks.  `seed` parameterizes Scrambling's LFSR.
std::unique_ptr<IndexingPolicy> make_indexing_policy(IndexingKind kind,
                                                     std::uint64_t num_banks,
                                                     std::uint64_t seed = 1);

}  // namespace pcal
