#include "power/energy_model.h"

#include <cmath>

#include "util/error.h"

namespace pcal {

EnergyModel::EnergyModel(TechnologyParams tech, CacheConfig cache,
                         PartitionConfig partition)
    : tech_(tech), cache_(cache), partition_(partition) {
  cache_.validate();
  partition_.validate(cache_);
  PCAL_CONFIG_CHECK(tech_.vdd > tech_.vdd_retention &&
                        tech_.vdd_retention > 0.0,
                    "need vdd > vdd_retention > 0");
  PCAL_CONFIG_CHECK(tech_.retention_leak_fraction > 0.0 &&
                        tech_.retention_leak_fraction < 1.0,
                    "retention leakage fraction must be in (0,1)");
  PCAL_CONFIG_CHECK(tech_.clock_ns > 0.0, "clock period must be positive");
}

double EnergyModel::tag_bytes(std::uint64_t data_bytes) const {
  const double lines =
      static_cast<double>(data_bytes) / static_cast<double>(cache_.line_bytes);
  return lines * static_cast<double>(cache_.tag_bits()) / 8.0;
}

double EnergyModel::access_energy_pj(std::uint64_t bytes) const {
  const double kb = static_cast<double>(bytes) / 1024.0;
  return tech_.dyn_base_pj + tech_.dyn_sqrt_pj * std::sqrt(kb) +
         tech_.dyn_line_pj_per_byte * static_cast<double>(cache_.line_bytes);
}

double EnergyModel::leakage_mw(std::uint64_t bytes) const {
  const double kb =
      (static_cast<double>(bytes) + tag_bytes(bytes)) / 1024.0;
  return tech_.leak_mw_per_kb * kb *
         std::pow(kb / tech_.leak_ref_kb, tech_.leak_size_exponent);
}

double EnergyModel::retention_leakage_mw(std::uint64_t bytes) const {
  return leakage_mw(bytes) * tech_.retention_leak_fraction;
}

double EnergyModel::transition_energy_pj() const {
  const double bank_kb =
      static_cast<double>(partition_.bank_bytes(cache_)) / 1024.0;
  const double tag_component =
      tech_.transition_tag_pj_per_bit_byte *
      static_cast<double>(cache_.tag_bits()) *
      static_cast<double>(cache_.line_bytes);
  return tech_.transition_pj_per_kb * bank_kb + tag_component;
}

double EnergyModel::banked_access_energy_pj() const {
  const double wiring =
      1.0 + tech_.wiring_dyn_per_bank *
                static_cast<double>(partition_.num_banks - 1);
  return access_energy_pj(partition_.bank_bytes(cache_)) * wiring +
         tech_.decoder_pj;
}

double EnergyModel::monolithic_access_energy_pj() const {
  return access_energy_pj(cache_.size_bytes);
}

std::uint64_t EnergyModel::breakeven_cycles() const {
  const double bank_bytes =
      static_cast<double>(partition_.bank_bytes(cache_));
  // Power saved while in retention (mW == pJ/ns).
  const double saved_mw = leakage_mw(static_cast<std::uint64_t>(bank_bytes)) -
                          retention_leakage_mw(
                              static_cast<std::uint64_t>(bank_bytes));
  PCAL_ASSERT(saved_mw > 0.0);
  const double pj_per_cycle = saved_mw * tech_.clock_ns;
  const double cycles = transition_energy_pj() / pj_per_cycle;
  return static_cast<std::uint64_t>(std::ceil(cycles));
}

}  // namespace pcal
