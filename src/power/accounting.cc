#include "power/accounting.h"

#include "util/error.h"

namespace pcal {

EnergyReport EnergyAccounting::price_run(
    const std::vector<BankActivity>& activity,
    std::uint64_t total_cycles) const {
  const auto& cache = model_.cache();
  const auto& partition = model_.partition();
  PCAL_ASSERT_MSG(activity.size() == partition.num_banks,
                  "activity size " << activity.size() << " != banks "
                                   << partition.num_banks);

  const double t_ns = static_cast<double>(total_cycles) * model_.tech().clock_ns;
  const std::uint64_t bank_bytes = partition.bank_bytes(cache);
  // mW * ns == pJ.
  const double bank_leak_mw = model_.leakage_mw(bank_bytes);
  const double bank_ret_mw = model_.retention_leakage_mw(bank_bytes);
  const double e_access = model_.banked_access_energy_pj();
  const double e_tr = model_.transition_energy_pj();

  EnergyReport report;
  std::uint64_t total_accesses = 0;
  for (const BankActivity& a : activity) {
    PCAL_ASSERT_MSG(a.sleep_cycles <= total_cycles,
                    "bank sleeps longer than the run");
    total_accesses += a.accesses;
    const double sleep_ns =
        static_cast<double>(a.sleep_cycles) * model_.tech().clock_ns;
    report.partitioned.dynamic_pj +=
        static_cast<double>(a.accesses) * e_access;
    report.partitioned.leakage_active_pj += bank_leak_mw * (t_ns - sleep_ns);
    report.partitioned.leakage_retention_pj += bank_ret_mw * sleep_ns;
    report.partitioned.transition_pj +=
        static_cast<double>(a.sleep_episodes) * e_tr;
  }

  report.baseline_pj =
      static_cast<double>(total_accesses) *
          model_.monolithic_access_energy_pj() +
      model_.leakage_mw(cache.size_bytes) * t_ns;
  return report;
}

}  // namespace pcal
