// Energy accounting over one simulation run.
//
// Consumes the per-bank activity statistics produced by BlockControl and
// prices them with the EnergyModel.  The paper's energy-saving figure
// (Tables II/III) compares the power-managed partitioned cache against a
// monolithic, never-sleeping cache of the same geometry; both sides are
// computed here from the same run.
#pragma once

#include <cstdint>
#include <vector>

#include "power/energy_model.h"

namespace pcal {

/// Per-bank activity facts (extracted from BlockControl after finish()).
struct BankActivity {
  std::uint64_t accesses = 0;
  std::uint64_t sleep_cycles = 0;
  std::uint64_t sleep_episodes = 0;
};

/// Energy breakdown of one run (all in pJ).
struct EnergyBreakdown {
  double dynamic_pj = 0.0;      // unit accesses incl. decoder + wiring
  double leakage_active_pj = 0.0;
  /// Leakage spent in the deepest low-power state (retention for the
  /// legacy bank model, power-gated for the per-unit model).
  double leakage_retention_pj = 0.0;
  /// Leakage spent at the drowsy voltage (per-unit model only; the
  /// legacy bank path leaves it zero).
  double leakage_drowsy_pj = 0.0;
  double transition_pj = 0.0;

  double total_pj() const {
    return dynamic_pj + leakage_active_pj + leakage_retention_pj +
           leakage_drowsy_pj + transition_pj;
  }

  /// Component-wise accumulation (multi-level runs sum their levels).
  /// Keep in lockstep with total_pj() when adding fields.
  EnergyBreakdown& operator+=(const EnergyBreakdown& other) {
    dynamic_pj += other.dynamic_pj;
    leakage_active_pj += other.leakage_active_pj;
    leakage_retention_pj += other.leakage_retention_pj;
    leakage_drowsy_pj += other.leakage_drowsy_pj;
    transition_pj += other.transition_pj;
    return *this;
  }
};

struct EnergyReport {
  EnergyBreakdown partitioned;
  double baseline_pj = 0.0;  // monolithic, never sleeping
  /// Fractional saving vs the monolithic baseline (paper's Esav).
  double saving() const {
    return baseline_pj > 0.0 ? 1.0 - partitioned.total_pj() / baseline_pj
                             : 0.0;
  }

  /// Accumulates another level's report (components and baseline add).
  EnergyReport& operator+=(const EnergyReport& other) {
    partitioned += other.partitioned;
    baseline_pj += other.baseline_pj;
    return *this;
  }
};

class EnergyAccounting {
 public:
  explicit EnergyAccounting(EnergyModel model) : model_(std::move(model)) {}

  /// Prices a run of `total_cycles` with the given per-bank activity.
  /// `activity.size()` must equal the partition's bank count.
  EnergyReport price_run(const std::vector<BankActivity>& activity,
                         std::uint64_t total_cycles) const;

  const EnergyModel& model() const { return model_; }

 private:
  EnergyModel model_;
};

}  // namespace pcal
