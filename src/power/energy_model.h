// Analytical energy model for monolithic and partitioned caches.
//
// All quantities derive from TechnologyParams plus cache/partition
// geometry.  The model answers four questions: what one access costs, what
// an array leaks (active and in retention), what a Vdd transition costs,
// and — combining the last two — the breakeven time that Block Control
// must program into its saturating counters.
#pragma once

#include <cstdint>

#include "bank/partition_config.h"
#include "cache/cache_config.h"
#include "power/tech_params.h"

namespace pcal {

class EnergyModel {
 public:
  EnergyModel(TechnologyParams tech, CacheConfig cache,
              PartitionConfig partition);

  const TechnologyParams& tech() const { return tech_; }
  const CacheConfig& cache() const { return cache_; }
  const PartitionConfig& partition() const { return partition_; }

  // ---- building blocks ----

  /// Dynamic energy (pJ) of one access to an array of `bytes` capacity
  /// with the configured line width (data + tag read).
  double access_energy_pj(std::uint64_t bytes) const;

  /// Active leakage power (mW) of an array of `bytes` capacity, including
  /// its tag bits.
  double leakage_mw(std::uint64_t bytes) const;

  /// Leakage power (mW) of the same array in retention.
  double retention_leakage_mw(std::uint64_t bytes) const;

  /// Energy (pJ) of one sleep/wake round trip of one bank (data + tag
  /// reactivation).
  double transition_energy_pj() const;

  // ---- derived per-configuration quantities ----

  /// Dynamic energy (pJ) of one access to one bank *through the partition*
  /// (bank array + decoder D + wiring overhead for M banks).
  double banked_access_energy_pj() const;

  /// Dynamic energy (pJ) of one access to the monolithic baseline.
  double monolithic_access_energy_pj() const;

  /// Breakeven time in cycles: the idle time whose retention-state leakage
  /// saving repays one Vdd transition.  Block Control counters saturate at
  /// this value (paper: a few tens of cycles; 5-6 bit counters).
  std::uint64_t breakeven_cycles() const;

  /// Bits of tag storage per line for the configured geometry.
  unsigned tag_bits_per_line() const { return cache_.tag_bits(); }

  /// Tag bytes associated with an array of `bytes` of data.
  double tag_bytes(std::uint64_t data_bytes) const;

 private:
  TechnologyParams tech_;
  CacheConfig cache_;
  PartitionConfig partition_;
};

}  // namespace pcal
