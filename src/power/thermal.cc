#include "power/thermal.h"

#include "util/error.h"

namespace pcal {

std::vector<double> BankThermalModel::temperatures(
    const std::vector<double>& bank_power_mw) const {
  PCAL_ASSERT_MSG(!bank_power_mw.empty(), "no banks");
  const double n = static_cast<double>(bank_power_mw.size());
  double total = 0.0;
  for (double p : bank_power_mw) {
    PCAL_ASSERT_MSG(p >= 0.0, "negative bank power");
    total += p;
  }
  std::vector<double> temps;
  temps.reserve(bank_power_mw.size());
  for (double p : bank_power_mw) {
    const double others = bank_power_mw.size() > 1
                              ? (total - p) / (n - 1.0)
                              : 0.0;
    const double effective = p + params_.neighbor_coupling * others;
    temps.push_back(params_.ambient_c + params_.r_th_c_per_mw * effective);
  }
  return temps;
}

double BankThermalModel::average_power_mw(const EnergyModel& model,
                                          const BankActivity& activity,
                                          std::uint64_t total_cycles) {
  if (total_cycles == 0) return 0.0;
  const std::uint64_t bank_bytes =
      model.partition().bank_bytes(model.cache());
  const double t_ns =
      static_cast<double>(total_cycles) * model.tech().clock_ns;
  const double sleep_ns =
      static_cast<double>(activity.sleep_cycles) * model.tech().clock_ns;
  const double energy_pj =
      static_cast<double>(activity.accesses) *
          model.banked_access_energy_pj() +
      model.leakage_mw(bank_bytes) * (t_ns - sleep_ns) +
      model.retention_leakage_mw(bank_bytes) * sleep_ns +
      static_cast<double>(activity.sleep_episodes) *
          model.transition_energy_pj();
  return energy_pj / t_ns;  // pJ / ns == mW
}

}  // namespace pcal
