// Technology parameters for the 45nm-class power/energy model.
//
// The paper characterizes energy from an industrial STMicroelectronics
// 45nm design kit we do not have.  These parameters define a CACTI-style
// analytical stand-in; absolute joules are not the reproduction target
// (the paper's own numbers are kit specific), but the *relations* the
// evaluation leans on are encoded here:
//   - leakage grows superlinearly with array size (larger memories have a
//     higher static/dynamic ratio -> energy savings grow with cache size),
//   - dynamic access energy grows with array size (sqrt term: longer
//     bitlines/wordlines) and with line width,
//   - reactivation (Vdd_low -> Vdd) energy has a tag-array component that
//     grows with tag width x line width (tags have a larger reactivation
//     penalty -> savings shrink with line size, paper Table III),
//   - partitioning adds wiring/decoder overhead growing with M (paper:
//     beyond 4-5 banks overhead eats the savings; uniform banks stay
//     feasible to M = 16).
#pragma once

namespace pcal {

struct TechnologyParams {
  // Supplies (V).  Retention voltage preserves state (drowsy operation).
  double vdd = 1.1;
  double vdd_retention = 0.75;

  // Cycle time (ns): one access per cycle.
  double clock_ns = 1.0;

  // Operating temperature (C): accelerates both leakage and NBTI.
  double temperature_c = 80.0;

  // ---- leakage ----
  // Active leakage power of an array holding `kb` kbytes:
  //   P = leak_mw_per_kb * kb * (kb / leak_ref_kb)^leak_size_exponent  [mW]
  double leak_mw_per_kb = 1.0;
  double leak_ref_kb = 16.0;
  double leak_size_exponent = 0.5;
  // Fraction of active leakage that remains in retention (drowsy) state.
  double retention_leak_fraction = 0.05;

  // ---- dynamic access energy (pJ per access) ----
  //   E = dyn_base_pj + dyn_sqrt_pj * sqrt(kb) + dyn_line_pj_per_byte * line
  double dyn_base_pj = 6.0;
  double dyn_sqrt_pj = 2.0;
  double dyn_line_pj_per_byte = 0.15;

  // ---- partitioning overhead ----
  // Decoder D energy per access (f() + 1-hot encoder + Block Control).
  double decoder_pj = 0.3;
  // Dynamic wiring overhead factor: x (1 + wiring_dyn_per_bank * (M - 1)).
  // Characterized from the trends reported for partitioned scratchpads
  // ([10] in the paper).
  double wiring_dyn_per_bank = 0.012;

  // ---- Vdd transition (sleep entry + wake) energy ----
  // Data-array component per kbyte of bank, plus the tag-array component
  // that scales with (tag bits per line) x (line bytes).
  double transition_pj_per_kb = 20.0;
  double transition_tag_pj_per_bit_byte = 0.03;

  /// Defaults above: the 45nm-class operating point used throughout the
  /// reproduction.
  static TechnologyParams st45() { return TechnologyParams{}; }
};

}  // namespace pcal
