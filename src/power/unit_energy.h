// Per-unit energy model: honest pricing at every power-management
// granularity.
//
// The legacy EnergyModel/EnergyAccounting pair prices the paper's bank
// partition (and the monolithic baseline) and is kept bit-identical for
// those runs — the paper-table calibrations depend on it.  What it cannot
// price is everything this repo grew past the paper: per-line units (the
// old SimResult.energy was deliberately zero at kLine), per-way units,
// the drowsy/gated hybrid, and multi-level hierarchies.  UnitEnergyModel
// closes that gap with an explicitly parameterized overhead model
// (EnergyParams) instead of silent zeros:
//
//   - every independently power-managed unit pays for its sleep network:
//     a leakage overhead proportional to the unit's own leakage (sleep
//     transistors are sized to the current they must gate) plus a fixed
//     always-on control tax (breakeven counter, drive, level shifters)
//     that is what actually punishes fine granularity — 512 per-line
//     controllers cost more than 4 per-bank ones;
//   - sleep has two depths: drowsy (state-preserving retention voltage,
//     drowsy_leak_fraction of active leakage, cheap transitions) and
//     power-gated (gated_leak_fraction, full transition cost);
//   - transition energy scales with the unit's capacity plus a fixed
//     per-event control pulse, so gating a line is cheap per event but
//     never free.
//
// The baseline every report compares against is unchanged: the
// never-sleeping monolithic cache of the same total capacity, with no
// sleep network at all.  See docs/ENERGY_MODEL.md for the derivation,
// defaults, and the migration story for pre-PR-3 BENCH_*.json readers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/managed_cache.h"
#include "power/accounting.h"
#include "power/energy_model.h"
#include "power/tech_params.h"

namespace pcal {

/// Sleep-network and drowsy-state parameters of the per-unit model.
/// Leakage fractions are relative to the unit's active leakage.
struct EnergyParams {
  /// Leakage remaining at the drowsy (state-preserving) voltage.
  double drowsy_leak_fraction = 0.25;
  /// Leakage remaining through an off sleep transistor (state lost).
  double gated_leak_fraction = 0.02;
  /// Leakage overhead of the sleep devices themselves, as a fraction of
  /// the unit's active leakage (sleep transistors are sized to the unit's
  /// switched current, so this scales with the unit automatically).
  double sleep_area_leak_overhead = 0.06;
  /// Always-on control leakage per unit (breakeven counter + gate drive +
  /// level shifters), in microwatts.  Unit-count-proportional: the term
  /// that makes per-line management expensive.
  double control_leak_uw_per_unit = 1.2;
  /// Fixed control-pulse energy per gate transition (pJ), on top of the
  /// capacity-proportional part.
  double gate_transition_fixed_pj = 1.0;
  /// Drowsy round trip as a fraction of the full gate round trip of the
  /// same unit (a Vdd dip, not a power cut).
  double drowsy_transition_fraction = 0.12;
  /// Fixed part of one drowsy round trip (pJ).
  double drowsy_transition_fixed_pj = 0.25;
  /// Wakeup latencies of the sleep hardware.  These are the recommended
  /// values for the timing core's LatencyParams wake costs (see
  /// wake_latencies() below); the driver stalls the clock by them when a
  /// run opts into timing, and leakage is then priced against the
  /// stall-stretched wall clock.
  std::uint64_t drowsy_wake_cycles = 1;
  std::uint64_t gated_wake_cycles = 3;

  void validate() const;

  /// The 45nm-class defaults used throughout the reproduction.
  static EnergyParams st45() { return EnergyParams{}; }
};

/// Prices one power-management granularity of one cache level.
class UnitEnergyModel {
 public:
  /// `topology` fixes the geometry, granularity and unit count; `params`
  /// the sleep-network overheads; `tech` the base 45nm-class numbers.
  UnitEnergyModel(const EnergyParams& params, const TechnologyParams& tech,
                  const CacheTopology& topology);

  const EnergyParams& params() const { return params_; }
  const CacheTopology& topology() const { return topology_; }
  double clock_ns() const;

  // ---- per-unit building blocks ----

  /// Data bytes of one power-management unit.
  std::uint64_t unit_bytes() const { return unit_bytes_; }

  /// Active leakage power of one unit (mW), including its share of the
  /// sleep network (area overhead + control tax).
  double unit_leak_mw() const;

  /// Leakage power of one unit at the drowsy voltage (mW).  The control
  /// tax never sleeps.
  double unit_drowsy_mw() const;

  /// Leakage power of one gated unit (mW).  Ditto.
  double unit_gated_mw() const;

  /// Dynamic energy of one access through this organization (pJ).
  double access_energy_pj() const;

  /// One full power-gate round trip of one unit (pJ).
  double gate_transition_pj() const;

  /// One drowsy round trip of one unit (pJ).
  double drowsy_transition_pj() const;

  // ---- derived thresholds ----

  /// Idle cycles whose gated-state saving repays one gate round trip.
  std::uint64_t gate_breakeven_cycles() const;

  /// Idle cycles whose drowsy-state saving repays one drowsy round trip
  /// (always <= gate_breakeven_cycles with sane parameters).
  std::uint64_t drowsy_breakeven_cycles() const;

  /// Never-sleeping monolithic baseline of the same total capacity (pJ).
  double baseline_pj(std::uint64_t accesses, std::uint64_t cycles) const;

 private:
  double breakeven_for(double saved_mw, double transition_pj) const;

  EnergyParams params_;
  TechnologyParams tech_;
  CacheTopology topology_;
  EnergyModel base_;  // the shared leakage/access building blocks
  std::uint64_t unit_bytes_;
};

/// Prices a run at any granularity from the per-unit activity vector
/// (drowsy split included — pure-gated backends report drowsy_cycles = 0
/// and gated_episodes = sleep_episodes, so one formula covers both).
/// `activity.size()` must equal the topology's unit count.
///
/// Stall-aware: `total_cycles` is the timing core's stretched wall clock
/// (accesses + stall cycles), so wakeup and miss stalls are priced as
/// real time — active or sleeping leakage for every unit — on both the
/// managed side and the never-sleeping monolithic baseline, which lives
/// on the same clock.
EnergyReport price_unit_run(const UnitEnergyModel& model,
                            const std::vector<UnitActivity>& activity,
                            std::uint64_t total_cycles);

/// The timing-core wake costs this energy model recommends: a
/// LatencyParams with the drowsy/gated wakeup latencies filled in and
/// hit/miss costs left at zero (those are a cache-geometry property, not
/// a sleep-hardware one).
LatencyParams wake_latencies(const EnergyParams& params);

}  // namespace pcal
