// Per-bank thermal model (extension beyond the paper).
//
// NBTI is thermally activated, and a bank's temperature tracks its power.
// A static partition therefore suffers twice: its hot bank has both the
// least recovery idleness *and* the highest temperature.  Re-indexing
// equalizes activity, hence temperature, hence thermal aging — a second
// balancing effect on top of the idleness one.  The model is a simple
// steady-state resistance network: T_bank = T_ambient + R_th * P_bank.
#pragma once

#include <vector>

#include "power/accounting.h"

namespace pcal {

struct ThermalParams {
  // Die-level baseline: chosen so a typically-loaded bank sits near the
  // 80C reference temperature the aging model is calibrated at.
  double ambient_c = 70.0;
  double r_th_c_per_mw = 2.2;      // per-bank thermal resistance
  double neighbor_coupling = 0.3;  // fraction of neighbours' heat received
};

class BankThermalModel {
 public:
  explicit BankThermalModel(ThermalParams params = ThermalParams{})
      : params_(params) {}

  const ThermalParams& params() const { return params_; }

  /// Steady-state temperatures from per-bank average powers (mW).  Each
  /// bank heats itself through R_th and receives a coupled share of the
  /// average of all other banks (lumped lateral conduction).
  std::vector<double> temperatures(
      const std::vector<double>& bank_power_mw) const;

  /// Average power (mW) of one bank over a run, from its activity.
  static double average_power_mw(const EnergyModel& model,
                                 const BankActivity& activity,
                                 std::uint64_t total_cycles);

 private:
  ThermalParams params_;
};

}  // namespace pcal
