#include "power/unit_energy.h"

#include <cmath>

#include "util/error.h"

namespace pcal {
namespace {

/// The partition the base EnergyModel is built with: the topology's own
/// at bank/way granularity (it prices the decoder + wiring), a single
/// bank otherwise (monolithic and per-line organizations have no bank
/// partition to speak of).
PartitionConfig base_partition(const CacheTopology& topology) {
  if (topology.granularity == Granularity::kBank ||
      topology.granularity == Granularity::kWay)
    return topology.partition;
  PartitionConfig mono;
  mono.num_banks = 1;
  return mono;
}

std::uint64_t unit_bytes_of(const CacheTopology& topology) {
  const CacheConfig& c = topology.cache;
  switch (topology.granularity) {
    case Granularity::kMonolithic: return c.size_bytes;
    case Granularity::kBank:
      return c.size_bytes / topology.partition.num_banks;
    case Granularity::kWay:
      return c.size_bytes / (topology.partition.num_banks * c.ways);
    case Granularity::kLine: return c.line_bytes;
  }
  return c.size_bytes;
}

}  // namespace

void EnergyParams::validate() const {
  PCAL_CONFIG_CHECK(gated_leak_fraction > 0.0 &&
                        gated_leak_fraction < drowsy_leak_fraction &&
                        drowsy_leak_fraction < 1.0,
                    "need 0 < gated < drowsy < 1 leakage fractions");
  PCAL_CONFIG_CHECK(sleep_area_leak_overhead >= 0.0 &&
                        control_leak_uw_per_unit >= 0.0,
                    "sleep-network overheads must be non-negative");
  PCAL_CONFIG_CHECK(drowsy_transition_fraction > 0.0 &&
                        drowsy_transition_fraction < 1.0,
                    "drowsy transition fraction must be in (0,1)");
  PCAL_CONFIG_CHECK(gate_transition_fixed_pj >= 0.0 &&
                        drowsy_transition_fixed_pj >= 0.0,
                    "fixed transition costs must be non-negative");
}

UnitEnergyModel::UnitEnergyModel(const EnergyParams& params,
                                 const TechnologyParams& tech,
                                 const CacheTopology& topology)
    : params_(params),
      tech_(tech),
      topology_(topology),
      base_(tech, topology.cache, base_partition(topology)),
      unit_bytes_(unit_bytes_of(topology)) {
  params_.validate();
  PCAL_CONFIG_CHECK(unit_bytes_ > 0, "empty power-management unit");
}

double UnitEnergyModel::clock_ns() const { return tech_.clock_ns; }

double UnitEnergyModel::unit_leak_mw() const {
  return base_.leakage_mw(unit_bytes_) *
             (1.0 + params_.sleep_area_leak_overhead) +
         params_.control_leak_uw_per_unit * 1e-3;
}

double UnitEnergyModel::unit_drowsy_mw() const {
  return base_.leakage_mw(unit_bytes_) * params_.drowsy_leak_fraction +
         params_.control_leak_uw_per_unit * 1e-3;
}

double UnitEnergyModel::unit_gated_mw() const {
  return base_.leakage_mw(unit_bytes_) * params_.gated_leak_fraction +
         params_.control_leak_uw_per_unit * 1e-3;
}

double UnitEnergyModel::access_energy_pj() const {
  switch (topology_.granularity) {
    case Granularity::kMonolithic:
      return base_.monolithic_access_energy_pj();
    case Granularity::kBank:
    case Granularity::kWay:
      return base_.banked_access_energy_pj();
    case Granularity::kLine:
      // One flat array plus the full-index rotation decoder of [7].
      return base_.monolithic_access_energy_pj() + tech_.decoder_pj;
  }
  return base_.monolithic_access_energy_pj();
}

double UnitEnergyModel::gate_transition_pj() const {
  const double unit_kb = static_cast<double>(unit_bytes_) / 1024.0;
  const double tag_component =
      tech_.transition_tag_pj_per_bit_byte *
      static_cast<double>(topology_.cache.tag_bits()) *
      static_cast<double>(topology_.cache.line_bytes);
  return tech_.transition_pj_per_kb * unit_kb + tag_component +
         params_.gate_transition_fixed_pj;
}

double UnitEnergyModel::drowsy_transition_pj() const {
  const double full =
      gate_transition_pj() - params_.gate_transition_fixed_pj;
  return params_.drowsy_transition_fraction * full +
         params_.drowsy_transition_fixed_pj;
}

double UnitEnergyModel::breakeven_for(double saved_mw,
                                      double transition_pj) const {
  PCAL_ASSERT(saved_mw > 0.0);
  const double pj_per_cycle = saved_mw * tech_.clock_ns;  // mW == pJ/ns
  return std::ceil(transition_pj / pj_per_cycle);
}

std::uint64_t UnitEnergyModel::gate_breakeven_cycles() const {
  const double saved = unit_leak_mw() - unit_gated_mw();
  return static_cast<std::uint64_t>(
      breakeven_for(saved, gate_transition_pj()));
}

std::uint64_t UnitEnergyModel::drowsy_breakeven_cycles() const {
  const double saved = unit_leak_mw() - unit_drowsy_mw();
  return static_cast<std::uint64_t>(
      breakeven_for(saved, drowsy_transition_pj()));
}

double UnitEnergyModel::baseline_pj(std::uint64_t accesses,
                                    std::uint64_t cycles) const {
  const double t_ns = static_cast<double>(cycles) * tech_.clock_ns;
  return static_cast<double>(accesses) *
             base_.monolithic_access_energy_pj() +
         base_.leakage_mw(topology_.cache.size_bytes) * t_ns;
}

LatencyParams wake_latencies(const EnergyParams& params) {
  LatencyParams latency;
  latency.drowsy_wake_cycles = params.drowsy_wake_cycles;
  latency.gated_wake_cycles = params.gated_wake_cycles;
  return latency;
}

EnergyReport price_unit_run(const UnitEnergyModel& model,
                            const std::vector<UnitActivity>& activity,
                            std::uint64_t total_cycles) {
  PCAL_ASSERT_MSG(activity.size() == model.topology().num_units(),
                  "activity size " << activity.size() << " != units "
                                   << model.topology().num_units());
  const double clock_ns = model.clock_ns();
  const double t_ns = static_cast<double>(total_cycles) * clock_ns;
  const double leak_mw = model.unit_leak_mw();
  const double drowsy_mw = model.unit_drowsy_mw();
  const double gated_mw = model.unit_gated_mw();
  const double e_access = model.access_energy_pj();
  const double e_gate = model.gate_transition_pj();
  const double e_drowsy = model.drowsy_transition_pj();

  EnergyReport report;
  std::uint64_t total_accesses = 0;
  for (const UnitActivity& a : activity) {
    PCAL_ASSERT_MSG(a.sleep_cycles <= total_cycles,
                    "unit sleeps longer than the run");
    PCAL_ASSERT_MSG(a.drowsy_cycles <= a.sleep_cycles,
                    "drowsy cycles exceed sleep cycles");
    PCAL_ASSERT_MSG(a.gated_episodes <= a.sleep_episodes,
                    "gated episodes exceed sleep episodes");
    total_accesses += a.accesses;
    const double sleep_ns =
        static_cast<double>(a.sleep_cycles) * clock_ns;
    const double drowsy_ns =
        static_cast<double>(a.drowsy_cycles) * clock_ns;
    const double gated_ns = sleep_ns - drowsy_ns;
    report.partitioned.dynamic_pj +=
        static_cast<double>(a.accesses) * e_access;
    report.partitioned.leakage_active_pj += leak_mw * (t_ns - sleep_ns);
    report.partitioned.leakage_drowsy_pj += drowsy_mw * drowsy_ns;
    report.partitioned.leakage_retention_pj += gated_mw * gated_ns;
    // Drowsy-only episodes pay the shallow round trip; episodes that
    // deepen into gating pay the full one (the drowsy pass-through is
    // absorbed into the gate cost).
    report.partitioned.transition_pj +=
        static_cast<double>(a.sleep_episodes - a.gated_episodes) *
            e_drowsy +
        static_cast<double>(a.gated_episodes) * e_gate;
  }
  report.baseline_pj = model.baseline_pj(total_accesses, total_cycles);
  return report;
}

}  // namespace pcal
