#!/usr/bin/env python3
"""Validator for pcal power-state timeline artifacts.

Every timeline emitter — `pcalsim --timeline`, the `[timeline]` sweep
knob, and the Python bindings — writes the versioned JSON artifact
described by docs/timeline_schema_v1.json.  CI runs this gate on every
emitted timeline so a drifting writer (or a torn file from a killed
run) is caught before anyone builds tooling on top of it.

Validation is two-layered:

  1. JSON Schema validation against docs/timeline_schema_v1.json —
     through the `jsonschema` package when importable, else through a
     built-in structural checker covering the same constraints (type,
     required members, additionalProperties, the A/D/G state alphabet),
     so the gate never silently weakens on machines without the
     package.
  2. Semantic cross-checks the schema language cannot express:
     - every interval carries one sample per group-table row;
     - each sample's states string is exactly its group's unit count
       long, and its awake/drowsy/gated counts sum to it and agree
       with the string's letter census;
     - group rows tile the unit vector contiguously (first_unit of row
       k+1 == first_unit + units of row k, starting at 0);
     - interval cycle counts are non-decreasing and span_cycles match
       their differences; exactly the last record is final.

Usage:
  check_timeline_json.py <timeline.json> [...]
  check_timeline_json.py --schema <schema.json> <timeline.json> [...]

Exits nonzero on any violation, and when no files are given (an empty
gate would pass vacuously exactly when the smoke steps stopped
producing timelines).
"""
import json
import os
import sys

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "docs",
    "timeline_schema_v1.json")

STATE_CHARS = frozenset("ADG")


def _type_ok(value, schema_type):
    if schema_type == "object":
        return isinstance(value, dict)
    if schema_type == "array":
        return isinstance(value, list)
    if schema_type == "string":
        return isinstance(value, str)
    if schema_type == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if schema_type == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if schema_type == "boolean":
        return isinstance(value, bool)
    return True


def _builtin_validate(doc, schema, path="$"):
    """Minimal draft-07 subset: the constructs the timeline schema uses
    (type, const, required, properties, additionalProperties, items,
    minimum, pattern over the fixed [ADG]* alphabet)."""
    errors = []
    if "const" in schema and doc != schema["const"]:
        errors.append("%s: expected %r, got %r" % (path, schema["const"], doc))
        return errors
    if "type" in schema and not _type_ok(doc, schema["type"]):
        errors.append("%s: expected %s" % (path, schema["type"]))
        return errors
    if isinstance(doc, dict):
        for key in schema.get("required", ()):
            if key not in doc:
                errors.append("%s: missing required member %r" % (path, key))
        props = schema.get("properties", {})
        if schema.get("additionalProperties", True) is False:
            for key in doc:
                if key not in props:
                    errors.append("%s: unknown member %r" % (path, key))
        for key, sub in props.items():
            if key in doc:
                errors.extend(
                    _builtin_validate(doc[key], sub, "%s.%s" % (path, key)))
    elif isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            errors.extend(
                _builtin_validate(item, schema["items"],
                                  "%s[%d]" % (path, i)))
    else:
        if "minimum" in schema and isinstance(doc, (int, float)) \
                and not isinstance(doc, bool) and doc < schema["minimum"]:
            errors.append("%s: %r below minimum %r"
                          % (path, doc, schema["minimum"]))
        if schema.get("pattern") == "^[ADG]*$" and isinstance(doc, str):
            if not set(doc) <= STATE_CHARS:
                errors.append("%s: states outside the A/D/G alphabet" % path)
    return errors


def schema_validate(doc, schema):
    """Returns a list of error strings (empty = valid)."""
    try:
        import jsonschema
    except ImportError:
        return _builtin_validate(doc, schema)
    validator = jsonschema.Draft7Validator(schema)
    return ["%s: %s" % ("$" + "".join("[%r]" % p for p in e.absolute_path),
                        e.message)
            for e in validator.iter_errors(doc)]


def semantic_checks(doc):
    """Cross-member invariants the schema language cannot express.
    Assumes schema validation already passed."""
    errors = []
    groups = doc["groups"]
    next_unit = 0
    for i, g in enumerate(groups):
        if g["first_unit"] != next_unit:
            errors.append("group %d: first_unit %d, expected %d (group "
                          "rows must tile the unit vector)"
                          % (i, g["first_unit"], next_unit))
        next_unit = g["first_unit"] + g["units"]

    prev_cycles = 0
    for i, rec in enumerate(doc["intervals"]):
        where = "interval[%d]" % i
        if len(rec["groups"]) != len(groups):
            errors.append("%s: %d samples for %d group rows"
                          % (where, len(rec["groups"]), len(groups)))
            continue
        if rec["cycles"] < prev_cycles:
            errors.append("%s: cycles %d below previous %d"
                          % (where, rec["cycles"], prev_cycles))
        if rec["span_cycles"] != rec["cycles"] - prev_cycles:
            errors.append("%s: span_cycles %d != cycle delta %d"
                          % (where, rec["span_cycles"],
                             rec["cycles"] - prev_cycles))
        prev_cycles = rec["cycles"]
        is_last = i == len(doc["intervals"]) - 1
        if rec["final"] != is_last:
            errors.append("%s: final=%s but record is%s the last"
                          % (where, rec["final"], "" if is_last else " not"))
        for k, (g, s) in enumerate(zip(groups, rec["groups"])):
            gwhere = "%s.groups[%d]" % (where, k)
            if len(s["states"]) != g["units"]:
                errors.append("%s: states length %d != %d units"
                              % (gwhere, len(s["states"]), g["units"]))
                continue
            census = {"A": s["awake"], "D": s["drowsy"], "G": s["gated"]}
            for char, count in census.items():
                actual = s["states"].count(char)
                if actual != count:
                    errors.append("%s: %d '%s' chars but count says %d"
                                  % (gwhere, actual, char, count))
            if s["awake"] + s["drowsy"] + s["gated"] != g["units"]:
                errors.append("%s: state counts sum to %d, not %d units"
                              % (gwhere,
                                 s["awake"] + s["drowsy"] + s["gated"],
                                 g["units"]))
            if s["hits"] + s["misses"] != s["accesses"]:
                errors.append("%s: hits %d + misses %d != accesses %d"
                              % (gwhere, s["hits"], s["misses"],
                                 s["accesses"]))
    return errors


def check_file(path, schema):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: unreadable or malformed JSON: %s" % (path, e)]
    errors = schema_validate(doc, schema)
    if not errors:
        errors = semantic_checks(doc)
    return ["%s: %s" % (path, e) for e in errors]


def main(argv):
    args = argv[1:]
    schema_path = SCHEMA_PATH
    if args and args[0] == "--schema":
        if len(args) < 2:
            print("check_timeline_json: --schema needs a path",
                  file=sys.stderr)
            return 2
        schema_path = args[1]
        args = args[2:]
    if not args:
        print("usage: check_timeline_json.py [--schema <schema.json>] "
              "<timeline.json> [...]", file=sys.stderr)
        return 2
    try:
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, ValueError) as e:
        print("check_timeline_json: cannot load schema %s: %s"
              % (schema_path, e), file=sys.stderr)
        return 2

    failures = 0
    for path in args:
        errors = check_file(path, schema)
        if errors:
            failures += 1
            for e in errors:
                print("FAIL %s" % e)
        else:
            print("ok   %s" % path)
    if failures:
        print("check_timeline_json: %d of %d file(s) failed"
              % (failures, len(args)))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
