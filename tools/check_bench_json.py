#!/usr/bin/env python3
"""Bench-regression gate over BENCH_*.json perf records (stdlib only).

Every sweep run — the bench binaries and the pcalsweep CLI — drops a
BENCH_<name>.json record (written by src/core/bench_record.cc).  CI
uploads them as artifacts; this gate rejects records that indicate a
silently broken run before they ever become "the new baseline":

  - malformed JSON, or a missing/mistyped core schema key;
  - failed_jobs != 0, zero jobs, or zero total accesses;
  - pcalsweep records whose job count disagrees with the spec's declared
    cross-product (or, for sharded records, with the deterministic
    shard slice), or whose per-job result rows are missing, short, or
    carry a zero/negative energy (the honest-energy invariant: every
    backend prices every run — see docs/ENERGY_MODEL.md);
  - multi-core result rows ("cores" arrays from bench_multicore_qos and
    multi-core pcalsweep grids) with a malformed core entry, a core that
    was attributed zero energy, or per-core accesses/energies that do
    not sum back to the system row;
  - drowsy_comparison-style backend_energy sections with a zero-energy
    backend.

Usage:
  check_bench_json.py [--allow-failures] <dir-or-BENCH_file.json> [...]
  check_bench_json.py --merge <out.json> <shard1.json> <shard2.json> [...]
  check_bench_json.py --normalize <file.json> [...]

Modes (docs/ROBUSTNESS.md):
  --allow-failures  a record with failed_jobs > 0 passes iff the
                    failures are structured data: a "failures" array
                    whose entries name the job, config and reason, in
                    one-to-one correspondence with the ok:false result
                    rows (which are then exempt from the energy/timing
                    row checks — they carry no data).
  --merge           recombine shard-tagged records (pcalsweep --shard)
                    into one full-grid record, validating that the
                    shards share one fingerprint/grid, that their job
                    indices are disjoint, and that together they cover
                    the whole cross-product.  The merged record passes
                    this gate like an unsharded run's.
  --normalize       print the canonical form of a record with the
                    run-varying keys (wall_seconds, accesses_per_second,
                    threads, steals) removed and keys sorted — the form
                    to diff when comparing a resumed or merged record
                    against an uninterrupted run.

Exits nonzero on any violation, and also when no records are found at
all (an empty gate would pass vacuously exactly when the smoke steps
stopped producing records).
"""
import glob
import json
import os
import sys

# key -> allowed types; bool is excluded from the numeric keys (in
# Python bool is an int subclass, and a "jobs": true record is garbage).
CORE_SCHEMA = {
    "bench": (str,),
    "jobs": (int,),
    "failed_jobs": (int,),
    "threads": (int,),
    "wall_seconds": (int, float),
    "total_accesses": (int,),
    "accesses_per_second": (int, float),
    "intervals_observed": (int,),
    "steals": (int,),
}

RESULT_ROW_SCHEMA = {
    "workload": (str,),
    "config": (str,),
    "accesses": (int,),
    "total_cycles": (int,),
    "stall_cycles": (int,),
    "mshr_stall_cycles": (int,),
    "port_stall_cycles": (int,),
    "bw_stall_cycles": (int,),
    "avg_latency": (int, float),
    "energy_pj": (int, float),
    "idleness": (int, float),
    "lifetime_years": (int, float),
}

# Per-core entries inside a multi-core result row's "cores" array
# (written by write_result_row when the job ran a MultiCoreSystem).
CORE_ROW_SCHEMA = {
    "workload": (str,),
    "accesses": (int,),
    "stall_cycles": (int,),
    "llc_way_mask": (int,),
    "l1_hit_rate": (int, float),
    "llc_accesses": (int,),
    "llc_hits": (int,),
    "energy_pj": (int, float),
    "idleness": (int, float),
}

# Structured failed-job entries (pcalsweep --on-failure record).
FAILURE_ROW_SCHEMA = {
    "job": (int,),
    "workload": (str,),
    "config": (str,),
    "reason": (str,),
    "attempts": (int,),
    "timed_out": (bool,),
    "cancelled": (bool,),
}

# Scalar-vs-batched driver throughput rows (bench_micro_ops).
THROUGHPUT_ROW_SCHEMA = {
    "backend": (str,),
    "policy": (str,),
    "mode": (str,),
    "batch_size": (int,),
    "accesses": (int,),
    "wall_seconds": (int, float),
    "accesses_per_second": (int, float),
}

# Worker-count scaling rows (bench_sweep_scaling).
SCALING_ROW_SCHEMA = {
    "workers": (int,),
    "wall_seconds": (int, float),
    "accesses_per_second": (int, float),
    "speedup": (int, float),
    "efficiency": (int, float),
}

# Run-varying keys normalized out before determinism diffs: they depend
# on the machine and scheduling, never on the simulated results.
RUN_VARYING_KEYS = ("wall_seconds", "accesses_per_second", "threads", "steals")


def typed(value, types):
    return isinstance(value, types) and not (
        isinstance(value, bool) and bool not in types
    )


def shard_slice(record):
    """The global job indices a sharded record must cover, or None."""
    if "shard_count" not in record:
        return None
    count = record.get("shard_count")
    index = record.get("shard_index")
    cross = record.get("cross_product")
    if (
        not typed(count, (int,))
        or not typed(index, (int,))
        or not typed(cross, (int,))
        or count < 1
        or not 1 <= index <= count
    ):
        return None
    return [i for i in range(cross) if i % count == index - 1]


def check_cores(row, i, bad):
    cores = row["cores"]
    if not isinstance(cores, list) or not cores:
        bad("result row %d: 'cores' is not a non-empty list" % i)
        return
    sum_accesses = 0
    sum_energy = 0.0
    for k, core in enumerate(cores):
        if not isinstance(core, dict):
            bad("result row %d core %d is not an object" % (i, k))
            return
        for key, types in CORE_ROW_SCHEMA.items():
            if key not in core or not typed(core[key], types):
                bad("result row %d core %d: bad or missing '%s'" % (i, k, key))
                return
        if not core["energy_pj"] > 0:
            bad(
                "result row %d core %d (%s): zero attributed energy"
                % (i, k, core["workload"])
            )
        if core["llc_hits"] > core["llc_accesses"]:
            bad(
                "result row %d core %d: llc_hits %d > llc_accesses %d"
                % (i, k, core["llc_hits"], core["llc_accesses"])
            )
        sum_accesses += core["accesses"]
        sum_energy += core["energy_pj"]
    if sum_accesses != row.get("accesses"):
        bad(
            "result row %d: per-core accesses sum %d != system %s"
            % (i, sum_accesses, row.get("accesses"))
        )
    system_energy = row.get("energy_pj", 0)
    if system_energy > 0 and abs(sum_energy - system_energy) > (
        # Each printed value carries 6 significant digits.
        1e-4 * system_energy
    ):
        bad(
            "result row %d: per-core energy sum %s != system %s"
            % (i, sum_energy, system_energy)
        )


def check_failures(record, bad):
    """Validates the structured "failures" array against failed_jobs and
    the ok:false result rows.  Returns the set of failed job ids (or row
    positions when rows carry no "job" member)."""
    failures = record.get("failures")
    if not isinstance(failures, list) or not failures:
        bad(
            "failed_jobs is %d but there is no structured 'failures' array"
            % record["failed_jobs"]
        )
        return set()
    if len(failures) != record["failed_jobs"]:
        bad(
            "failed_jobs is %d but 'failures' lists %d entries"
            % (record["failed_jobs"], len(failures))
        )
    failed_ids = set()
    for k, entry in enumerate(failures):
        if not isinstance(entry, dict):
            bad("failures entry %d is not an object" % k)
            continue
        for key, types in FAILURE_ROW_SCHEMA.items():
            if key not in entry or not typed(entry[key], types):
                bad("failures entry %d: bad or missing '%s'" % (k, key))
        if not entry.get("reason"):
            bad("failures entry %d: empty reason" % k)
        if "job" in entry:
            failed_ids.add(entry["job"])
    return failed_ids


def check_record(path, allow_failures=False):
    errors = []

    def bad(msg):
        errors.append("%s: %s" % (os.path.basename(path), msg))

    try:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, ValueError) as e:
        bad("unreadable or malformed JSON (%s)" % e)
        return errors
    if not isinstance(record, dict):
        bad("top level is not a JSON object")
        return errors

    for key, types in CORE_SCHEMA.items():
        if key not in record:
            bad("missing key '%s'" % key)
        elif not typed(record[key], types):
            bad("key '%s' has type %s" % (key, type(record[key]).__name__))
    if errors:
        return errors

    if record["jobs"] <= 0:
        bad("ran no jobs")
    failed_ids = set()
    if record["failed_jobs"] != 0:
        if allow_failures:
            failed_ids = check_failures(record, bad)
        else:
            bad("%d failed jobs" % record["failed_jobs"])
    if record["threads"] <= 0:
        bad("nonpositive thread count")
    if record["total_accesses"] <= 0 and record["failed_jobs"] < record["jobs"]:
        bad("zero total accesses")

    # pcalsweep extras: the job count must match the spec's declared
    # cross-product — or, for a sharded record, the deterministic slice
    # (global index % shard_count == shard_index - 1) — and every result
    # row must carry nonzero energy.
    slice_ids = shard_slice(record)
    if "shard_count" in record and slice_ids is None:
        bad("malformed shard members (shard_index/shard_count/cross_product)")
    elif slice_ids is not None:
        if record["jobs"] != len(slice_ids):
            bad(
                "jobs (%s) != shard %s/%s slice size (%s)"
                % (
                    record["jobs"],
                    record["shard_index"],
                    record["shard_count"],
                    len(slice_ids),
                )
            )
    elif "cross_product" in record and record["jobs"] != record["cross_product"]:
        bad(
            "jobs (%s) != spec cross-product (%s)"
            % (record["jobs"], record["cross_product"])
        )
    if "results" in record:
        rows = record["results"]
        if not isinstance(rows, list):
            bad("'results' is not a list")
        elif len(rows) != record["jobs"]:
            bad("%d result rows for %d jobs" % (len(rows), record["jobs"]))
        else:
            row_jobs = [
                row["job"]
                for row in rows
                if isinstance(row, dict) and typed(row.get("job"), (int,))
            ]
            if slice_ids is not None and row_jobs != slice_ids:
                bad("result rows do not cover the shard's job slice")
            elif row_jobs and row_jobs != sorted(set(row_jobs)):
                bad("result row 'job' indices are not strictly increasing")
            for i, row in enumerate(rows):
                if not isinstance(row, dict):
                    bad("result row %d is not an object" % i)
                    continue
                for key, types in RESULT_ROW_SCHEMA.items():
                    if key not in row or not typed(row[key], types):
                        bad("result row %d: bad or missing '%s'" % (i, key))
                if not row.get("ok", True):
                    if not allow_failures:
                        bad("result row %d: job failed" % i)
                    elif failed_ids and row.get("job") not in failed_ids:
                        bad(
                            "result row %d: failed but job %s is not in "
                            "'failures'" % (i, row.get("job"))
                        )
                    # Failed rows carry no data — the energy/timing
                    # invariants below do not apply to them.
                    continue
                if not row.get("energy_pj", 0) > 0:
                    bad(
                        "result row %d (%s on %s): zero energy"
                        % (i, row.get("workload"), row.get("config"))
                    )
                # Timing-core invariants: the clock never runs backwards
                # (total = accesses + stalls) and the reported average
                # latency agrees with it.
                acc = row.get("accesses", 0)
                total = row.get("total_cycles", 0)
                stall = row.get("stall_cycles", 0)
                if total != acc + stall:
                    bad(
                        "result row %d: total_cycles (%s) != accesses (%s)"
                        " + stall_cycles (%s)" % (i, total, acc, stall)
                    )
                # Contention stalls (core/contention.h) are a breakdown
                # of stall_cycles, never an addition beyond it.
                contention = (
                    row.get("mshr_stall_cycles", 0)
                    + row.get("port_stall_cycles", 0)
                    + row.get("bw_stall_cycles", 0)
                )
                if contention > stall:
                    bad(
                        "result row %d: contention stalls (%s) exceed "
                        "stall_cycles (%s)" % (i, contention, stall)
                    )
                if acc > 0:
                    # Records print 6 significant digits; allow that much.
                    want = total / acc
                    if abs(row.get("avg_latency", 0) - want) > 1e-5 * want:
                        bad(
                            "result row %d: avg_latency %s disagrees with "
                            "total_cycles/accesses %s"
                            % (i, row.get("avg_latency"), want)
                        )
                # Multi-core rows: each core entry is schema-valid, every
                # core's attributed energy is positive, and the per-core
                # accesses/energies sum back to the system row (honest
                # attribution — the LLC report is split by access share).
                if "cores" in row:
                    check_cores(row, i, bad)

    # bench_micro_ops throughput rows: every row schema-valid with a
    # positive measured rate, and each backend/policy pair's batched
    # mode at least as fast as NO throughput at all (i.e. nonzero) —
    # the 1.5x speedup target itself is a perf goal tracked in the
    # record's "speedup" section, not a hard schema gate, so a slow
    # machine cannot turn the whole CI leg red.
    if "throughput" in record:
        rows = record["throughput"]
        if not isinstance(rows, list) or not rows:
            bad("'throughput' is not a non-empty list")
        else:
            modes = set()
            for i, row in enumerate(rows):
                if not isinstance(row, dict):
                    bad("throughput row %d is not an object" % i)
                    continue
                for key, types in THROUGHPUT_ROW_SCHEMA.items():
                    if key not in row or not typed(row[key], types):
                        bad("throughput row %d: bad or missing '%s'" % (i, key))
                if row.get("mode") not in ("scalar", "batched"):
                    bad("throughput row %d: mode '%s'" % (i, row.get("mode")))
                else:
                    modes.add(row["mode"])
                if not row.get("accesses_per_second", 0) > 0:
                    bad("throughput row %d: zero accesses/sec" % i)
                if not row.get("batch_size", 0) >= 1:
                    bad("throughput row %d: nonpositive batch_size" % i)
            if modes and modes != {"scalar", "batched"}:
                bad("throughput rows cover only %s" % sorted(modes))
        speedups = record.get("speedup")
        if not isinstance(speedups, dict) or not speedups:
            bad("'throughput' without a 'speedup' object")
        else:
            for name, ratio in speedups.items():
                if not typed(ratio, (int, float)) or not ratio > 0:
                    bad("speedup '%s' is not a positive number" % name)

    # bench_sweep_scaling rows: schema-valid, workers strictly
    # increasing from 1, the 1-worker row anchored at speedup 1.
    if "scaling" in record:
        rows = record["scaling"]
        if not isinstance(rows, list) or not rows:
            bad("'scaling' is not a non-empty list")
        else:
            last_workers = 0
            for i, row in enumerate(rows):
                if not isinstance(row, dict):
                    bad("scaling row %d is not an object" % i)
                    continue
                for key, types in SCALING_ROW_SCHEMA.items():
                    if key not in row or not typed(row[key], types):
                        bad("scaling row %d: bad or missing '%s'" % (i, key))
                if row.get("workers", 0) <= last_workers:
                    bad("scaling row %d: workers not increasing" % i)
                last_workers = row.get("workers", last_workers)
                if not row.get("accesses_per_second", 0) > 0:
                    bad("scaling row %d: zero accesses/sec" % i)
            if rows and isinstance(rows[0], dict):
                if rows[0].get("workers") != 1:
                    bad("scaling curve must start at 1 worker")
                elif rows[0].get("speedup") != 1:
                    bad("scaling 1-worker row must anchor speedup at 1")

    # drowsy_comparison-style per-backend energy sections.
    if "backend_energy" in record:
        backends = record["backend_energy"]
        if not isinstance(backends, dict) or not backends:
            bad("'backend_energy' is not a non-empty object")
        else:
            for name, facts in backends.items():
                if not isinstance(facts, dict) or not facts.get(
                    "min_total_pj", 0
                ) > 0:
                    bad("backend '%s' reports zero energy" % name)

    return errors


def normalized(record):
    """The record minus its run-varying keys (for determinism diffs)."""
    return {k: v for k, v in record.items() if k not in RUN_VARYING_KEYS}


def merge_shards(out_path, shard_paths):
    """Recombines pcalsweep --shard records into one full-grid record."""
    shards = []
    for path in shard_paths:
        try:
            with open(path, encoding="utf-8") as f:
                shards.append((path, json.load(f)))
        except (OSError, ValueError) as e:
            print("FAIL %s: unreadable (%s)" % (path, e), file=sys.stderr)
            return 1

    errors = []
    first = shards[0][1]
    identity_keys = ("fingerprint", "cross_product", "axes", "spec")
    for key in identity_keys + ("shard_count",):
        if key not in first:
            errors.append("%s: missing '%s'" % (shards[0][0], key))
    for path, record in shards[1:]:
        for key in identity_keys + ("shard_count",):
            if record.get(key) != first.get(key):
                errors.append(
                    "%s: '%s' disagrees with %s" % (path, key, shards[0][0])
                )
    if errors:
        for e in errors:
            print("FAIL %s" % e, file=sys.stderr)
        return 1

    count = first["shard_count"]
    seen_shards = sorted(r.get("shard_index") for _, r in shards)
    if seen_shards != list(range(1, count + 1)):
        print(
            "FAIL merge: need shards 1..%d exactly once, got %s"
            % (count, seen_shards),
            file=sys.stderr,
        )
        return 1

    rows = {}
    failures = []
    for path, record in shards:
        for row in record.get("results", []):
            job = row.get("job")
            if not typed(job, (int,)):
                errors.append("%s: result row without a 'job' index" % path)
                continue
            if job in rows:
                errors.append(
                    "%s: job %d already contributed by another shard"
                    % (path, job)
                )
                continue
            rows[job] = row
        failures.extend(record.get("failures", []))
    cross = first["cross_product"]
    missing = [i for i in range(cross) if i not in rows]
    if missing:
        errors.append(
            "merge: %d of %d jobs uncovered (first missing: %d)"
            % (len(missing), cross, missing[0])
        )
    extra = [i for i in rows if not 0 <= i < cross]
    if extra:
        errors.append("merge: job indices out of range: %s" % extra[:5])
    if errors:
        for e in errors:
            print("FAIL %s" % e, file=sys.stderr)
        return 1

    base_name = first["bench"]
    suffix = "_shard%dof%d" % (first["shard_index"], count)
    if base_name.endswith(suffix):
        base_name = base_name[: -len(suffix)]
    wall = sum(r.get("wall_seconds", 0) for _, r in shards)
    total_accesses = sum(r.get("total_accesses", 0) for _, r in shards)
    merged = {
        "bench": base_name,
        "spec": first["spec"],
        "fingerprint": first["fingerprint"],
        "cross_product": cross,
        "axes": first["axes"],
        "jobs": cross,
        "failed_jobs": sum(r.get("failed_jobs", 0) for _, r in shards),
        "threads": max(r.get("threads", 0) for _, r in shards),
        "wall_seconds": wall,
        "total_accesses": total_accesses,
        "accesses_per_second": total_accesses / wall if wall > 0 else 0,
        "intervals_observed": sum(
            r.get("intervals_observed", 0) for _, r in shards
        ),
        "steals": sum(r.get("steals", 0) for _, r in shards),
        "results": [rows[i] for i in range(cross)],
    }
    if failures:
        merged["failures"] = sorted(
            failures, key=lambda entry: entry.get("job", -1)
        )
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(
        "merged %d shards (%d jobs) into %s"
        % (len(shards), cross, out_path)
    )
    return 0


def normalize_files(paths):
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                record = json.load(f)
        except (OSError, ValueError) as e:
            print("FAIL %s: unreadable (%s)" % (path, e), file=sys.stderr)
            return 1
        print(json.dumps(normalized(record), indent=2, sort_keys=True))
    return 0


def main(argv):
    if argv and argv[0] == "--merge":
        if len(argv) < 3:
            print(
                "usage: check_bench_json.py --merge <out.json> <shard.json>...",
                file=sys.stderr,
            )
            return 2
        return merge_shards(argv[1], argv[2:])
    if argv and argv[0] == "--normalize":
        if len(argv) < 2:
            print(
                "usage: check_bench_json.py --normalize <file.json> [...]",
                file=sys.stderr,
            )
            return 2
        return normalize_files(argv[1:])

    allow_failures = False
    args = []
    for arg in argv:
        if arg == "--allow-failures":
            allow_failures = True
        else:
            args.append(arg)

    paths = []
    for arg in args:
        if os.path.isdir(arg):
            paths.extend(sorted(glob.glob(os.path.join(arg, "BENCH_*.json"))))
        else:
            paths.append(arg)
    if not paths:
        print("check_bench_json: no BENCH_*.json records found", file=sys.stderr)
        return 1

    failures = 0
    for path in paths:
        errors = check_record(path, allow_failures=allow_failures)
        if errors:
            failures += 1
            for e in errors:
                print("FAIL %s" % e, file=sys.stderr)
        else:
            print("ok   %s" % os.path.basename(path))
    if failures:
        print(
            "check_bench_json: %d of %d records failed" % (failures, len(paths)),
            file=sys.stderr,
        )
        return 1
    print("check_bench_json: %d records ok" % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
