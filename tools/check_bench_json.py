#!/usr/bin/env python3
"""Bench-regression gate over BENCH_*.json perf records (stdlib only).

Every sweep run — the bench binaries and the pcalsweep CLI — drops a
BENCH_<name>.json record (written by src/core/bench_record.cc).  CI
uploads them as artifacts; this gate rejects records that indicate a
silently broken run before they ever become "the new baseline":

  - malformed JSON, or a missing/mistyped core schema key;
  - failed_jobs != 0, zero jobs, or zero total accesses;
  - pcalsweep records whose job count disagrees with the spec's declared
    cross-product, or whose per-job result rows are missing, short, or
    carry a zero/negative energy (the honest-energy invariant: every
    backend prices every run — see docs/ENERGY_MODEL.md);
  - multi-core result rows ("cores" arrays from bench_multicore_qos and
    multi-core pcalsweep grids) with a malformed core entry, a core that
    was attributed zero energy, or per-core accesses/energies that do
    not sum back to the system row;
  - drowsy_comparison-style backend_energy sections with a zero-energy
    backend.

Usage: check_bench_json.py <dir-or-BENCH_file.json> [...]
Exits nonzero on any violation, and also when no records are found at
all (an empty gate would pass vacuously exactly when the smoke steps
stopped producing records).
"""
import glob
import json
import os
import sys

# key -> allowed types; bool is excluded from the numeric keys (in
# Python bool is an int subclass, and a "jobs": true record is garbage).
CORE_SCHEMA = {
    "bench": (str,),
    "jobs": (int,),
    "failed_jobs": (int,),
    "threads": (int,),
    "wall_seconds": (int, float),
    "total_accesses": (int,),
    "accesses_per_second": (int, float),
    "intervals_observed": (int,),
    "steals": (int,),
}

RESULT_ROW_SCHEMA = {
    "workload": (str,),
    "config": (str,),
    "accesses": (int,),
    "total_cycles": (int,),
    "stall_cycles": (int,),
    "avg_latency": (int, float),
    "energy_pj": (int, float),
    "idleness": (int, float),
    "lifetime_years": (int, float),
}

# Per-core entries inside a multi-core result row's "cores" array
# (written by write_result_row when the job ran a MultiCoreSystem).
CORE_ROW_SCHEMA = {
    "workload": (str,),
    "accesses": (int,),
    "stall_cycles": (int,),
    "llc_way_mask": (int,),
    "l1_hit_rate": (int, float),
    "llc_accesses": (int,),
    "llc_hits": (int,),
    "energy_pj": (int, float),
    "idleness": (int, float),
}


def typed(value, types):
    return isinstance(value, types) and not (
        isinstance(value, bool) and bool not in types
    )


def check_cores(row, i, bad):
    cores = row["cores"]
    if not isinstance(cores, list) or not cores:
        bad("result row %d: 'cores' is not a non-empty list" % i)
        return
    sum_accesses = 0
    sum_energy = 0.0
    for k, core in enumerate(cores):
        if not isinstance(core, dict):
            bad("result row %d core %d is not an object" % (i, k))
            return
        for key, types in CORE_ROW_SCHEMA.items():
            if key not in core or not typed(core[key], types):
                bad("result row %d core %d: bad or missing '%s'" % (i, k, key))
                return
        if not core["energy_pj"] > 0:
            bad(
                "result row %d core %d (%s): zero attributed energy"
                % (i, k, core["workload"])
            )
        if core["llc_hits"] > core["llc_accesses"]:
            bad(
                "result row %d core %d: llc_hits %d > llc_accesses %d"
                % (i, k, core["llc_hits"], core["llc_accesses"])
            )
        sum_accesses += core["accesses"]
        sum_energy += core["energy_pj"]
    if sum_accesses != row.get("accesses"):
        bad(
            "result row %d: per-core accesses sum %d != system %s"
            % (i, sum_accesses, row.get("accesses"))
        )
    system_energy = row.get("energy_pj", 0)
    if system_energy > 0 and abs(sum_energy - system_energy) > (
        # Each printed value carries 6 significant digits.
        1e-4 * system_energy
    ):
        bad(
            "result row %d: per-core energy sum %s != system %s"
            % (i, sum_energy, system_energy)
        )


def check_record(path):
    errors = []

    def bad(msg):
        errors.append("%s: %s" % (os.path.basename(path), msg))

    try:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, ValueError) as e:
        bad("unreadable or malformed JSON (%s)" % e)
        return errors
    if not isinstance(record, dict):
        bad("top level is not a JSON object")
        return errors

    for key, types in CORE_SCHEMA.items():
        if key not in record:
            bad("missing key '%s'" % key)
        elif not typed(record[key], types):
            bad("key '%s' has type %s" % (key, type(record[key]).__name__))
    if errors:
        return errors

    if record["jobs"] <= 0:
        bad("ran no jobs")
    if record["failed_jobs"] != 0:
        bad("%d failed jobs" % record["failed_jobs"])
    if record["threads"] <= 0:
        bad("nonpositive thread count")
    if record["total_accesses"] <= 0:
        bad("zero total accesses")

    # pcalsweep extras: the job count must match the spec's declared
    # cross-product, and every result row must carry nonzero energy.
    if "cross_product" in record and record["jobs"] != record["cross_product"]:
        bad(
            "jobs (%s) != spec cross-product (%s)"
            % (record["jobs"], record["cross_product"])
        )
    if "results" in record:
        rows = record["results"]
        if not isinstance(rows, list):
            bad("'results' is not a list")
        elif len(rows) != record["jobs"]:
            bad("%d result rows for %d jobs" % (len(rows), record["jobs"]))
        else:
            for i, row in enumerate(rows):
                if not isinstance(row, dict):
                    bad("result row %d is not an object" % i)
                    continue
                for key, types in RESULT_ROW_SCHEMA.items():
                    if key not in row or not typed(row[key], types):
                        bad("result row %d: bad or missing '%s'" % (i, key))
                if not row.get("ok", True):
                    bad("result row %d: job failed" % i)
                if not row.get("energy_pj", 0) > 0:
                    bad(
                        "result row %d (%s on %s): zero energy"
                        % (i, row.get("workload"), row.get("config"))
                    )
                # Timing-core invariants: the clock never runs backwards
                # (total = accesses + stalls) and the reported average
                # latency agrees with it.
                acc = row.get("accesses", 0)
                total = row.get("total_cycles", 0)
                stall = row.get("stall_cycles", 0)
                if total != acc + stall:
                    bad(
                        "result row %d: total_cycles (%s) != accesses (%s)"
                        " + stall_cycles (%s)" % (i, total, acc, stall)
                    )
                if acc > 0:
                    # Records print 6 significant digits; allow that much.
                    want = total / acc
                    if abs(row.get("avg_latency", 0) - want) > 1e-5 * want:
                        bad(
                            "result row %d: avg_latency %s disagrees with "
                            "total_cycles/accesses %s"
                            % (i, row.get("avg_latency"), want)
                        )
                # Multi-core rows: each core entry is schema-valid, every
                # core's attributed energy is positive, and the per-core
                # accesses/energies sum back to the system row (honest
                # attribution — the LLC report is split by access share).
                if "cores" in row:
                    check_cores(row, i, bad)

    # drowsy_comparison-style per-backend energy sections.
    if "backend_energy" in record:
        backends = record["backend_energy"]
        if not isinstance(backends, dict) or not backends:
            bad("'backend_energy' is not a non-empty object")
        else:
            for name, facts in backends.items():
                if not isinstance(facts, dict) or not facts.get(
                    "min_total_pj", 0
                ) > 0:
                    bad("backend '%s' reports zero energy" % name)

    return errors


def main(argv):
    paths = []
    for arg in argv:
        if os.path.isdir(arg):
            paths.extend(sorted(glob.glob(os.path.join(arg, "BENCH_*.json"))))
        else:
            paths.append(arg)
    if not paths:
        print("check_bench_json: no BENCH_*.json records found", file=sys.stderr)
        return 1

    failures = 0
    for path in paths:
        errors = check_record(path)
        if errors:
            failures += 1
            for e in errors:
                print("FAIL %s" % e, file=sys.stderr)
        else:
            print("ok   %s" % os.path.basename(path))
    if failures:
        print(
            "check_bench_json: %d of %d records failed" % (failures, len(paths)),
            file=sys.stderr,
        )
        return 1
    print("check_bench_json: %d records ok" % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
