#!/usr/bin/env python3
"""Markdown link checker for the repo docs (stdlib only, used by CI).

Scans the given markdown files/directories for inline links and images
(``[text](target)`` / ``![alt](target)``) and reference definitions
(``[label]: target``), and verifies that every *relative* target exists
on disk (anchors are stripped; external schemes are skipped).  Exits
nonzero listing every broken link.

Usage: check_markdown_links.py <file-or-dir> [...]
"""
import os
import re
import sys

INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.lower().endswith((".md", ".markdown")):
                        yield os.path.join(root, name)
        else:
            yield path


def check_file(md_path):
    broken = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    # Drop fenced code blocks: their bracket syntax is not link syntax.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    targets = INLINE.findall(text) + REFDEF.findall(text)
    base = os.path.dirname(md_path)
    for target in targets:
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(base, rel))
        if not os.path.exists(resolved):
            broken.append((target, resolved))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for md in markdown_files(argv[1:]):
        checked += 1
        for target, resolved in check_file(md):
            print(f"BROKEN {md}: ({target}) -> missing {resolved}")
            failures += 1
    print(f"checked {checked} markdown file(s), {failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
