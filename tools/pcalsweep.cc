// pcalsweep — declarative grid sweeps over the simulator.
//
// Reads a .sweep spec (core/grid_spec.h), expands the declared
// cross-product of axes into independent simulation jobs, runs them on
// the SweepRunner thread pool, and reports:
//   - stdout: the result table (the spec's [table] pivot, or one row per
//     job) followed by its CSV block — and nothing else, so output can
//     be diffed across worker counts and against the bench binaries;
//   - stderr: progress and sweep statistics;
//   - BENCH_<name>.json: the machine-readable perf record (same path and
//     schema as the bench binaries; tools/check_bench_json.py gates it).
//
// Crash safety (docs/ROBUSTNESS.md):
//   --journal <file>   checkpoint completed jobs to an append-only
//                      journal as they finish (fsync'd in batches)
//   --resume <file>    load a journal, skip its completed jobs, append
//                      the rest; output is bit-identical to an
//                      uninterrupted run at any worker count
//   --shard k/N        run the deterministic 1/N slice (global job
//                      index % N == k-1) and emit a shard-tagged record
//                      that check_bench_json.py --merge recombines
//   --on-failure m     skip (default: report, record, exit 1) | record
//                      (failures are data: structured "failures"
//                      entries, table holes, exit 0) | abort (cancel
//                      jobs not yet started)
//   --retries <n>      retry TransientError jobs up to n extra attempts
//   --retry-backoff-ms <ms>  deterministic backoff (attempt k waits k*ms)
//   --timeout-ms <ms>  cooperative per-job deadline (JobTimeoutError)
//   --retry-failed     with --resume: re-run journaled failures too
//
// Usage:
//   pcalsweep <spec.sweep> [section.key=value ...]
//   pcalsweep --dry-run <spec.sweep> [...]   # expand + validate only
//   pcalsweep --example                      # print an annotated spec
//
// Environment (same knobs as the bench binaries):
//   PCAL_BENCH_ACCESSES   override accesses per job (> 1000)
//   PCAL_BENCH_THREADS    worker count (else PCAL_SWEEP_THREADS / cores)
//   PCAL_BENCH_JSON_DIR   where BENCH_<name>.json lands (default: cwd)
//   PCAL_BENCH_JSON=0     suppress the JSON record
//   PCAL_FAULT_INJECT     job=<i>:access=<n>:mode=<throw|transient|hang
//                         |exit>[:times=<t>] — deterministic fault
//                         injection for the crash-safety tests
#include <sys/stat.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/timeline.h"
#include "core/bench_record.h"
#include "core/checkpoint.h"
#include "core/experiment.h"
#include "core/grid_spec.h"
#include "trace/fault_inject.h"
#include "util/error.h"
#include "util/string_util.h"

namespace {

using namespace pcal;

constexpr const char* kExampleSpec = R"(# pcalsweep example specification
#
# A .sweep file declares a grid of independent simulator runs: every key
# under [sweep] is one axis, and the cross-product of all axis values is
# executed in one parallel sweep.  See docs/SWEEP_CLI.md for the full
# grammar and axis reference.

# Comments occupy whole lines ('#' or ';'); there are no trailing
# comments, so a value can never be truncated by accident.

[grid]
# `name` names the BENCH_<name>.json perf record; `accesses` is the
# per-job trace length (trace-file workloads cap at their own length).
name = example
accesses = 2000000

[sweep]
# Declaration order is loop order: the first axis is the outermost loop.
# Numeric axes take comma lists and ranges: "1..16 log2" = 1 2 4 8 16,
# "2..8 step 2" = 2 4 6 8, and k/M size suffixes ("8k" = 8192).
cache_size = 8192, 16384, 32768
line_size = 16
banks = 1..16 log2
policy = gated
# Workloads: MediaBench names, `mediabench` (all 18 of them),
# uniform / streaming / hotspot, and trace:<file> (.pct or text).
workload = cjpeg, rijndael_i

# Optional: pivot the results into a paper-style table instead of the
# default one-row-per-job listing.  Cells are metric:label:fmt:decimals;
# reduce = mean averages over the remaining axes (here: workload).
[table]
rows = cache_size
row_header = size
row_format = size
cols = banks
col_prefix = M=
cells = idleness:Idl:pct:0, lifetime:LT:num:2
reduce = mean
)";

/// Accesses per job: PCAL_BENCH_ACCESSES wins (same contract as the
/// bench binaries), else the spec's [grid] accesses.
std::uint64_t accesses_or_env(std::uint64_t spec_accesses) {
  if (const char* env = std::getenv("PCAL_BENCH_ACCESSES")) {
    const long long v = std::atoll(env);
    if (v > 1000) return static_cast<std::uint64_t>(v);
  }
  return spec_accesses;
}

/// Worker threads: PCAL_BENCH_THREADS if set, else the SweepRunner
/// default (PCAL_SWEEP_THREADS / hardware concurrency).
unsigned threads_or_env() {
  if (const char* env = std::getenv("PCAL_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return SweepRunner::default_threads();
}

std::string coords_of(const GridSpec& spec, const GridJob& job) {
  return spec.job_label(job);
}

/// Ensures the [timeline] artifact directory exists (one level; an
/// existing directory is fine).  Throws so the failure surfaces before
/// any simulation time is spent.
void ensure_timeline_dir(const std::string& dir) {
  if (mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return;
  throw Error("cannot create timeline dir " + dir + ": " +
              std::strerror(errno));
}

/// Length-prefixed string hashing so adjacent fields can never alias.
void add_str(Fingerprint* fp, const std::string& s) {
  fp->add_u64(s.size());
  fp->add(s);
}

/// The run fingerprint: a stable 64-bit identity of the expanded
/// cross-product — spec name, per-job accesses, every axis key and its
/// values in declaration order.  Shard slices of the same grid share it
/// (the shard coordinates live in the journal/record headers), so a
/// journal or shard record can never silently seed a different grid.
std::uint64_t run_fingerprint(const GridSpec& spec, std::uint64_t accesses) {
  Fingerprint fp;
  add_str(&fp, spec.name());
  fp.add_u64(accesses);
  for (const GridAxis& axis : spec.axes()) {
    add_str(&fp, axis.key);
    fp.add_u64(axis.values.size());
    for (const std::string& v : axis.values) add_str(&fp, v);
  }
  // [filter] predicates change which points expand; mix them only when
  // present so every pre-filter spec keeps its historical fingerprint
  // (journals written before this feature still resume).
  if (!spec.filters().empty()) {
    fp.add_u64(spec.filters().size());
    for (const GridFilter& f : spec.filters()) {
      add_str(&fp, f.key);
      add_str(&fp, f.op);
      add_str(&fp, f.value);
    }
  }
  return fp.value();
}

/// Per-job fingerprint: the run fingerprint mixed with the job's global
/// index, coordinates and workload.
std::uint64_t job_fingerprint(std::uint64_t run_fp, std::size_t index,
                              const GridJob& job) {
  Fingerprint fp;
  fp.add_u64(run_fp);
  fp.add_u64(index);
  for (const std::string& c : job.coords) add_str(&fp, c);
  add_str(&fp, job.workload);
  return fp.value();
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

/// Translates the runner's slice-local job indices to global
/// cross-product indices before they reach the journal.
class MappedJournalSink final : public JobCompletionSink {
 public:
  MappedJournalSink(JournalWriter* writer,
                    const std::vector<std::size_t>* local_to_global)
      : writer_(writer), local_to_global_(local_to_global) {}
  void on_job_complete(std::size_t index,
                       const SweepOutcome& outcome) override {
    writer_->on_job_complete((*local_to_global_)[index], outcome);
  }

 private:
  JournalWriter* writer_;
  const std::vector<std::size_t>* local_to_global_;
};

struct CliOptions {
  bool dry_run = false;
  bool retry_failed = false;
  std::string spec_path;
  std::vector<std::string> overrides;
  std::string journal_path;
  std::string resume_path;
  unsigned shard_index = 1;
  unsigned shard_count = 1;
  JobPolicy policy;
};

int usage() {
  std::cerr
      << "usage: pcalsweep <spec.sweep> [section.key=value ...]\n"
         "       pcalsweep --dry-run <spec.sweep> [...]\n"
         "       pcalsweep --example\n"
         "options:\n"
         "  --journal <file>         checkpoint completed jobs\n"
         "  --resume <file>          resume from a journal (appends to it)\n"
         "  --shard k/N              run the k-th of N deterministic slices\n"
         "  --on-failure skip|record|abort   failed-job handling\n"
         "  --retries <n>            extra attempts for transient errors\n"
         "  --retry-backoff-ms <ms>  deterministic retry backoff\n"
         "  --timeout-ms <ms>        cooperative per-job deadline\n"
         "  --retry-failed           with --resume: re-run journaled "
         "failures\n";
  return 2;
}

bool parse_shard(const std::string& arg, unsigned* index, unsigned* count) {
  const std::size_t slash = arg.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= arg.size())
    return false;
  const long k = std::atol(arg.substr(0, slash).c_str());
  const long n = std::atol(arg.substr(slash + 1).c_str());
  if (k < 1 || n < 1 || k > n) return false;
  *index = static_cast<unsigned>(k);
  *count = static_cast<unsigned>(n);
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions* opt, int* exit_code) {
  const auto need_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) return nullptr;
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--example") {
      std::cout << kExampleSpec;
      *exit_code = 0;
      return false;
    }
    if (arg == "--dry-run") {
      opt->dry_run = true;
      continue;
    }
    if (arg == "--retry-failed") {
      opt->retry_failed = true;
      continue;
    }
    if (arg == "--journal" || arg == "--resume" || arg == "--shard" ||
        arg == "--on-failure" || arg == "--retries" ||
        arg == "--retry-backoff-ms" || arg == "--timeout-ms") {
      const char* value = need_value(&i);
      if (value == nullptr) {
        std::cerr << "pcalsweep: " << arg << " needs a value\n";
        *exit_code = usage();
        return false;
      }
      if (arg == "--journal") {
        opt->journal_path = value;
      } else if (arg == "--resume") {
        opt->resume_path = value;
      } else if (arg == "--shard") {
        if (!parse_shard(value, &opt->shard_index, &opt->shard_count)) {
          std::cerr << "pcalsweep: bad --shard '" << value
                    << "' (want k/N with 1 <= k <= N)\n";
          *exit_code = usage();
          return false;
        }
      } else if (arg == "--on-failure") {
        const std::string v = value;
        if (v == "skip") {
          opt->policy.on_failure = OnFailure::kSkip;
        } else if (v == "record") {
          opt->policy.on_failure = OnFailure::kRecord;
        } else if (v == "abort") {
          opt->policy.on_failure = OnFailure::kAbort;
        } else {
          std::cerr << "pcalsweep: bad --on-failure '" << v
                    << "' (skip|record|abort)\n";
          *exit_code = usage();
          return false;
        }
      } else if (arg == "--retries") {
        opt->policy.max_attempts =
            1 + static_cast<unsigned>(std::atol(value));
      } else if (arg == "--retry-backoff-ms") {
        opt->policy.retry_backoff_ms =
            static_cast<std::uint64_t>(std::atoll(value));
      } else {  // --timeout-ms
        opt->policy.deadline_ms =
            static_cast<std::uint64_t>(std::atoll(value));
      }
      continue;
    }
    // An override is "section.key=value" — a dot before the '=' and no
    // path separator in the key part, so a spec path containing '='
    // still resolves as a path.
    const std::size_t eq = arg.find('=');
    const std::size_t dot = arg.find('.');
    const bool is_override = eq != std::string::npos &&
                             dot != std::string::npos && dot < eq &&
                             arg.find('/') >= eq;
    if (is_override) {
      opt->overrides.push_back(arg);
    } else if (opt->spec_path.empty()) {
      opt->spec_path = arg;
    } else {
      *exit_code = usage();
      return false;
    }
  }
  if (opt->spec_path.empty()) {
    *exit_code = usage();
    return false;
  }
  if (!opt->resume_path.empty() && !opt->journal_path.empty()) {
    std::cerr << "pcalsweep: --resume already appends to its journal; "
                 "drop --journal\n";
    *exit_code = usage();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  int exit_code = 0;
  if (!parse_cli(argc, argv, &opt, &exit_code)) return exit_code;
  const bool sharded = opt.shard_count > 1;

  try {
    const GridSpec spec = GridSpec::load(opt.spec_path, opt.overrides);
    const std::uint64_t accesses = accesses_or_env(spec.accesses());
    std::cerr << "[pcalsweep] " << spec.name() << ": "
              << spec.cross_product_size() << " jobs ("
              << spec.describe_axes() << "), " << accesses
              << " accesses/job\n";

    // expand() also validates trace-file workloads (missing files, bad
    // .pct headers) — which is everything --dry-run wants checked.
    const std::vector<GridJob> jobs = spec.expand(accesses);
    const std::uint64_t run_fp = run_fingerprint(spec, accesses);

    // The deterministic shard slice: global job index % N == k-1.  Every
    // job keeps its global index for journals, records and merges.
    std::vector<std::size_t> slice;
    slice.reserve(jobs.size() / opt.shard_count + 1);
    for (std::size_t i = 0; i < jobs.size(); ++i)
      if (i % opt.shard_count == opt.shard_index - 1) slice.push_back(i);
    if (sharded)
      std::cerr << "[pcalsweep] shard " << opt.shard_index << "/"
                << opt.shard_count << ": " << slice.size() << " of "
                << jobs.size() << " jobs\n";

    if (opt.dry_run) {
      std::cout << spec.name() << ": " << jobs.size() << " jobs ("
                << spec.describe_axes() << ")"
                << (spec.has_table() ? ", [table] pivot" : "") << "\n";
      if (sharded)
        std::cout << "shard " << opt.shard_index << "/" << opt.shard_count
                  << ": " << slice.size() << " jobs\n";
      return 0;
    }

    std::vector<std::uint64_t> job_fps(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
      job_fps[i] = job_fingerprint(run_fp, i, jobs[i]);

    const std::optional<FaultSpec> fault = fault_spec_from_env();

    AgingContext aging;
    std::vector<SweepJob> sweep_jobs;
    sweep_jobs.reserve(slice.size());
    for (const std::size_t g : slice) {
      SweepJob j;
      j.config = jobs[g].config;
      j.make_source = jobs[g].make_source;
      j.multicore = jobs[g].multicore;
      j.core_sources = jobs[g].core_sources;
      j.lut = &aging.lut();
      j.label = coords_of(spec, jobs[g]);
      if (fault && fault->job == g) {
        // Arm the injected fault on this job's trace stream (first
        // core's stream for a multi-core job).
        if (j.multicore && !j.core_sources.empty())
          j.core_sources[0] = wrap_with_fault(j.core_sources[0], *fault);
        else if (j.make_source)
          j.make_source = wrap_with_fault(j.make_source, *fault);
      }
      sweep_jobs.push_back(std::move(j));
    }

    // [timeline] dir: one TimelineRecorder per job on this shard's
    // slice.  The observer runs on the worker thread but only touches
    // its own recorder; artifacts are written after the run.  Without
    // the section `recorders` stays empty, every observer stays unset,
    // and the run is bit-identical to one without the knob.
    std::vector<std::unique_ptr<api::TimelineRecorder>> recorders;
    if (!spec.timeline_dir().empty()) {
      ensure_timeline_dir(spec.timeline_dir());
      recorders.resize(sweep_jobs.size());
      for (std::size_t i = 0; i < sweep_jobs.size(); ++i) {
        auto rec =
            std::make_unique<api::TimelineRecorder>(sweep_jobs[i].label);
        if (sweep_jobs[i].multicore)
          rec->price_with(*sweep_jobs[i].multicore);
        else
          rec->price_with(sweep_jobs[i].config);
        sweep_jobs[i].observer = rec->observer();
        recorders[i] = std::move(rec);
      }
    }

    // Journal setup.  The header pins the grid identity (fingerprint),
    // the full cross-product size, the per-job accesses and the shard
    // slice; resume refuses a journal whose header disagrees.
    JournalHeader header;
    header.name = spec.name();
    header.fingerprint = run_fp;
    header.jobs = jobs.size();
    header.accesses = accesses;
    header.shard_index = opt.shard_index;
    header.shard_count = opt.shard_count;

    std::vector<bool> skip;
    std::vector<SweepOutcome> journaled(jobs.size());
    std::vector<bool> have_journaled(jobs.size(), false);
    if (!opt.resume_path.empty()) {
      const LoadedJournal loaded = load_journal(opt.resume_path);
      if (loaded.header.fingerprint != header.fingerprint ||
          loaded.header.jobs != header.jobs ||
          loaded.header.accesses != header.accesses ||
          loaded.header.shard_index != header.shard_index ||
          loaded.header.shard_count != header.shard_count) {
        std::cerr << "pcalsweep: error: " << opt.resume_path
                  << " was journaled for a different run (fingerprint "
                  << hex16(loaded.header.fingerprint) << ", "
                  << loaded.header.jobs << " jobs, "
                  << loaded.header.accesses << " accesses, shard "
                  << loaded.header.shard_index << "/"
                  << loaded.header.shard_count << "; this run is "
                  << hex16(header.fingerprint) << ", " << header.jobs
                  << " jobs, " << header.accesses << " accesses, shard "
                  << header.shard_index << "/" << header.shard_count
                  << ")\n";
        return 1;
      }
      std::size_t restored = 0, refused = 0;
      skip.assign(slice.size(), false);
      for (const JournalEntry& entry : loaded.entries) {
        if (entry.job_fingerprint != job_fps[entry.index]) {
          std::cerr << "pcalsweep: error: " << opt.resume_path
                    << ": job " << entry.index
                    << " fingerprint mismatch — journal does not match "
                       "this grid\n";
          return 1;
        }
        if (!entry.outcome.ok() && opt.retry_failed) {
          ++refused;  // leave it runnable
          continue;
        }
        journaled[entry.index] = entry.outcome;
        have_journaled[entry.index] = true;
      }
      for (std::size_t i = 0; i < slice.size(); ++i) {
        if (have_journaled[slice[i]]) {
          skip[i] = true;
          ++restored;
        }
      }
      std::cerr << "[pcalsweep] resume: " << restored
                << " jobs restored from " << opt.resume_path
                << (loaded.torn_tail ? " (torn tail discarded)" : "");
      if (refused > 0) std::cerr << ", " << refused << " failures re-run";
      std::cerr << "\n";
    }

    std::unique_ptr<JournalWriter> writer;
    if (!opt.resume_path.empty())
      writer = std::make_unique<JournalWriter>(opt.resume_path, header,
                                               job_fps, /*append=*/true);
    else if (!opt.journal_path.empty())
      writer = std::make_unique<JournalWriter>(opt.journal_path, header,
                                               job_fps, /*append=*/false);
    MappedJournalSink sink(writer.get(), &slice);

    SweepRunOptions run_options;
    run_options.policy = opt.policy;
    if (writer) run_options.checkpoint = &sink;
    if (!skip.empty()) run_options.skip = &skip;

    SweepRunner runner(threads_or_env());
    std::vector<SweepOutcome> outcomes = runner.run(sweep_jobs, run_options);
    if (writer) writer->flush();

    // Fill skipped slots from the journal so downstream consumers (the
    // table, the record) see one complete, ordered outcome set —
    // bit-identical to an uninterrupted run.
    for (std::size_t i = 0; i < outcomes.size(); ++i)
      if (outcomes[i].skipped) outcomes[i] = journaled[slice[i]];

    // Write one timeline artifact per job that actually ran this
    // invocation (journal-restored and failed jobs recorded nothing).
    // Named by *global* job index so sharded runs drop disjoint files
    // into a shared directory.
    if (!recorders.empty()) {
      std::size_t written = 0;
      for (std::size_t i = 0; i < recorders.size(); ++i) {
        if (recorders[i]->intervals().empty()) continue;
        recorders[i]->write_json_file(spec.timeline_dir() + "/" +
                                      spec.name() + "_job" +
                                      std::to_string(slice[i]) + ".json");
        ++written;
      }
      std::cerr << "[pcalsweep] " << written << " timeline artifact(s) in "
                << spec.timeline_dir() << "\n";
    }

    // Resumed runs recompute the merged aggregate; plain runs keep the
    // runner's stats verbatim (threads/wall/steals are run-varying
    // either way and normalized out of record diffs).
    SweepStats stats = runner.last_stats();
    if (!opt.resume_path.empty()) {
      stats.jobs = outcomes.size();
      stats.failed_jobs = 0;
      stats.total_accesses = 0;
      stats.intervals_observed = 0;
      for (const SweepOutcome& o : outcomes) {
        if (o.ok())
          stats.total_accesses += o.result.accesses;
        else
          ++stats.failed_jobs;
        stats.intervals_observed += o.intervals;
      }
    }

    std::size_t failed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].ok()) continue;
      ++failed;
      std::cerr << "[pcalsweep] job " << slice[i] << " ("
                << coords_of(spec, jobs[slice[i]]) << ") failed";
      if (outcomes[i].attempts > 1)
        std::cerr << " after " << outcomes[i].attempts << " attempts";
      if (outcomes[i].timed_out) std::cerr << " (deadline exceeded)";
      if (outcomes[i].cancelled) std::cerr << " (cancelled)";
      std::cerr << ": " << outcomes[i].error_what << "\n";
    }

    // The perf record is written even on failure — failed_jobs > 0 is
    // exactly what the CI bench-JSON gate wants to see and reject
    // (unless the run opted into --on-failure record, whose structured
    // "failures" entries check_bench_json.py --allow-failures accepts).
    const std::string record_name =
        sharded ? spec.name() + "_shard" + std::to_string(opt.shard_index) +
                      "of" + std::to_string(opt.shard_count)
                : spec.name();
    write_bench_json(record_name, stats, [&](std::ostream& f) {
      f << "  \"spec\": \"" << json_escape(basename_of(opt.spec_path))
        << "\",\n"
        << "  \"fingerprint\": \"" << hex16(run_fp) << "\",\n"
        << "  \"cross_product\": " << spec.cross_product_size() << ",\n";
      if (sharded)
        f << "  \"shard_index\": " << opt.shard_index << ",\n"
          << "  \"shard_count\": " << opt.shard_count << ",\n";
      f << "  \"axes\": {";
      for (std::size_t i = 0; i < spec.axes().size(); ++i)
        f << (i ? ", " : "") << "\"" << json_escape(spec.axes()[i].key)
          << "\": " << spec.axes()[i].values.size();
      f << "},\n";
      if (!spec.filters().empty()) {
        f << "  \"filters\": [";
        for (std::size_t i = 0; i < spec.filters().size(); ++i) {
          const GridFilter& flt = spec.filters()[i];
          f << (i ? ", " : "") << "\""
            << json_escape(flt.key + " " + flt.op + " " + flt.value) << "\"";
        }
        f << "],\n";
      }
      if (failed > 0) {
        f << "  \"failures\": [\n";
        bool first = true;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          if (outcomes[i].ok()) continue;
          f << (first ? "" : ",\n") << "    {\"job\": " << slice[i]
            << ", \"workload\": \""
            << json_escape(jobs[slice[i]].workload) << "\", \"config\": \""
            << json_escape(coords_of(spec, jobs[slice[i]]))
            << "\", \"reason\": \"" << json_escape(outcomes[i].error_what)
            << "\", \"attempts\": " << outcomes[i].attempts
            << ", \"timed_out\": "
            << (outcomes[i].timed_out ? "true" : "false")
            << ", \"cancelled\": "
            << (outcomes[i].cancelled ? "true" : "false") << "}";
          first = false;
        }
        f << "\n  ],\n";
      }
      f << "  \"results\": [\n";
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        f << "    ";
        write_result_row(f, outcomes[i].result, jobs[slice[i]].workload,
                         outcomes[i].ok(),
                         outcomes[i].cores.empty() ? nullptr
                                                   : &outcomes[i].cores,
                         static_cast<long>(slice[i]));
        f << (i + 1 < outcomes.size() ? ",\n" : "\n");
      }
      f << "  ],\n";
    });

    std::cerr << "[pcalsweep] " << spec.name() << ": " << stats.jobs
              << " jobs on " << stats.threads << " threads, "
              << TextTable::num(stats.wall_seconds, 2) << "s, "
              << TextTable::num(stats.accesses_per_second() / 1e6, 1)
              << "M accesses/s\n";
    if (failed > 0) {
      std::cerr << "[pcalsweep] " << failed << " of " << outcomes.size()
                << " jobs failed\n";
      // Under --on-failure record, failures are tolerated data: the
      // table renders them as holes and the run exits 0.  The default
      // keeps the strict contract — no table, exit 1.
      if (opt.policy.on_failure != OnFailure::kRecord) return 1;
    }

    // stdout carries exactly what bench_common.h's print_table() emits,
    // so a spec's pivot can be diffed against its bench binary.  A
    // sharded run's table covers only its slice (merge the records for
    // the full grid view).
    std::vector<GridJob> table_jobs;
    if (sharded) {
      table_jobs.reserve(slice.size());
      for (const std::size_t g : slice) table_jobs.push_back(jobs[g]);
    }
    const TextTable table =
        spec.render_table(sharded ? table_jobs : jobs, outcomes);
    table.render(std::cout);
    std::cout << "\n--- CSV ---\n";
    table.render_csv(std::cout);
    std::cout << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pcalsweep: error: " << e.what() << "\n";
    return 1;
  }
}
