// pcalsweep — declarative grid sweeps over the simulator.
//
// Reads a .sweep spec (core/grid_spec.h), expands the declared
// cross-product of axes into independent simulation jobs, runs them on
// the SweepRunner thread pool, and reports:
//   - stdout: the result table (the spec's [table] pivot, or one row per
//     job) followed by its CSV block — and nothing else, so output can
//     be diffed across worker counts and against the bench binaries;
//   - stderr: progress and sweep statistics;
//   - BENCH_<name>.json: the machine-readable perf record (same path and
//     schema as the bench binaries; tools/check_bench_json.py gates it).
//
// Usage:
//   pcalsweep <spec.sweep> [section.key=value ...]
//   pcalsweep --dry-run <spec.sweep> [...]   # expand + validate only
//   pcalsweep --example                      # print an annotated spec
//
// Environment (same knobs as the bench binaries):
//   PCAL_BENCH_ACCESSES   override accesses per job (> 1000)
//   PCAL_BENCH_THREADS    worker count (else PCAL_SWEEP_THREADS / cores)
//   PCAL_BENCH_JSON_DIR   where BENCH_<name>.json lands (default: cwd)
//   PCAL_BENCH_JSON=0     suppress the JSON record
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/bench_record.h"
#include "core/experiment.h"
#include "core/grid_spec.h"
#include "util/string_util.h"

namespace {

using namespace pcal;

constexpr const char* kExampleSpec = R"(# pcalsweep example specification
#
# A .sweep file declares a grid of independent simulator runs: every key
# under [sweep] is one axis, and the cross-product of all axis values is
# executed in one parallel sweep.  See docs/SWEEP_CLI.md for the full
# grammar and axis reference.

# Comments occupy whole lines ('#' or ';'); there are no trailing
# comments, so a value can never be truncated by accident.

[grid]
# `name` names the BENCH_<name>.json perf record; `accesses` is the
# per-job trace length (trace-file workloads cap at their own length).
name = example
accesses = 2000000

[sweep]
# Declaration order is loop order: the first axis is the outermost loop.
# Numeric axes take comma lists and ranges: "1..16 log2" = 1 2 4 8 16,
# "2..8 step 2" = 2 4 6 8, and k/M size suffixes ("8k" = 8192).
cache_size = 8192, 16384, 32768
line_size = 16
banks = 1..16 log2
policy = gated
# Workloads: MediaBench names, `mediabench` (all 18 of them),
# uniform / streaming / hotspot, and trace:<file> (.pct or text).
workload = cjpeg, rijndael_i

# Optional: pivot the results into a paper-style table instead of the
# default one-row-per-job listing.  Cells are metric:label:fmt:decimals;
# reduce = mean averages over the remaining axes (here: workload).
[table]
rows = cache_size
row_header = size
row_format = size
cols = banks
col_prefix = M=
cells = idleness:Idl:pct:0, lifetime:LT:num:2
reduce = mean
)";

/// Accesses per job: PCAL_BENCH_ACCESSES wins (same contract as the
/// bench binaries), else the spec's [grid] accesses.
std::uint64_t accesses_or_env(std::uint64_t spec_accesses) {
  if (const char* env = std::getenv("PCAL_BENCH_ACCESSES")) {
    const long long v = std::atoll(env);
    if (v > 1000) return static_cast<std::uint64_t>(v);
  }
  return spec_accesses;
}

/// Worker threads: PCAL_BENCH_THREADS if set, else the SweepRunner
/// default (PCAL_SWEEP_THREADS / hardware concurrency).
unsigned threads_or_env() {
  if (const char* env = std::getenv("PCAL_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return SweepRunner::default_threads();
}

std::string coords_of(const GridSpec& spec, const GridJob& job) {
  std::string out;
  for (std::size_t i = 0; i < spec.axes().size(); ++i)
    out += (i ? " " : "") + spec.axes()[i].key + "=" + job.coords[i];
  return out;
}

int usage() {
  std::cerr << "usage: pcalsweep <spec.sweep> [section.key=value ...]\n"
               "       pcalsweep --dry-run <spec.sweep> [...]\n"
               "       pcalsweep --example\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool dry_run = false;
  std::string spec_path;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--example") {
      std::cout << kExampleSpec;
      return 0;
    }
    // An override is "section.key=value" — a dot before the '=' and no
    // path separator in the key part, so a spec path containing '='
    // still resolves as a path.
    const std::size_t eq = arg.find('=');
    const std::size_t dot = arg.find('.');
    const bool is_override = eq != std::string::npos &&
                             dot != std::string::npos && dot < eq &&
                             arg.find('/') >= eq;
    if (arg == "--dry-run") {
      dry_run = true;
    } else if (is_override) {
      overrides.push_back(arg);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage();
    }
  }
  if (spec_path.empty()) return usage();

  try {
    const GridSpec spec = GridSpec::load(spec_path, overrides);
    const std::uint64_t accesses = accesses_or_env(spec.accesses());
    std::cerr << "[pcalsweep] " << spec.name() << ": "
              << spec.cross_product_size() << " jobs ("
              << spec.describe_axes() << "), " << accesses
              << " accesses/job\n";

    // expand() also validates trace-file workloads (missing files, bad
    // .pct headers) — which is everything --dry-run wants checked.
    const std::vector<GridJob> jobs = spec.expand(accesses);
    if (dry_run) {
      std::cout << spec.name() << ": " << jobs.size() << " jobs ("
                << spec.describe_axes() << ")"
                << (spec.has_table() ? ", [table] pivot" : "") << "\n";
      return 0;
    }

    AgingContext aging;
    std::vector<SweepJob> sweep_jobs;
    sweep_jobs.reserve(jobs.size());
    for (const GridJob& g : jobs) {
      SweepJob j;
      j.config = g.config;
      j.make_source = g.make_source;
      j.multicore = g.multicore;
      j.core_sources = g.core_sources;
      j.lut = &aging.lut();
      sweep_jobs.push_back(std::move(j));
    }

    SweepRunner runner(threads_or_env());
    const std::vector<SweepOutcome> outcomes = runner.run(sweep_jobs);
    const SweepStats& stats = runner.last_stats();

    std::size_t failed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].ok()) continue;
      ++failed;
      try {
        outcomes[i].rethrow_if_error();
      } catch (const std::exception& e) {
        std::cerr << "[pcalsweep] job " << i << " ("
                  << coords_of(spec, jobs[i]) << ") failed: " << e.what()
                  << "\n";
      }
    }

    // The perf record is written even on failure — failed_jobs > 0 is
    // exactly what the CI bench-JSON gate wants to see and reject.
    write_bench_json(spec.name(), stats, [&](std::ostream& f) {
      f << "  \"spec\": \"" << json_escape(basename_of(spec_path))
        << "\",\n"
        << "  \"cross_product\": " << spec.cross_product_size() << ",\n";
      f << "  \"axes\": {";
      for (std::size_t i = 0; i < spec.axes().size(); ++i)
        f << (i ? ", " : "") << "\"" << json_escape(spec.axes()[i].key)
          << "\": " << spec.axes()[i].values.size();
      f << "},\n";
      f << "  \"results\": [\n";
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        f << "    ";
        write_result_row(f, outcomes[i].result, jobs[i].workload,
                         outcomes[i].ok(),
                         outcomes[i].cores.empty() ? nullptr
                                                   : &outcomes[i].cores);
        f << (i + 1 < outcomes.size() ? ",\n" : "\n");
      }
      f << "  ],\n";
    });

    std::cerr << "[pcalsweep] " << spec.name() << ": " << stats.jobs
              << " jobs on " << stats.threads << " threads, "
              << TextTable::num(stats.wall_seconds, 2) << "s, "
              << TextTable::num(stats.accesses_per_second() / 1e6, 1)
              << "M accesses/s\n";
    if (failed > 0) {
      std::cerr << "[pcalsweep] " << failed << " of " << outcomes.size()
                << " jobs failed\n";
      return 1;
    }

    // stdout carries exactly what bench_common.h's print_table() emits,
    // so a spec's pivot can be diffed against its bench binary.
    const TextTable table = spec.render_table(jobs, outcomes);
    table.render(std::cout);
    std::cout << "\n--- CSV ---\n";
    table.render_csv(std::cout);
    std::cout << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pcalsweep: error: " << e.what() << "\n";
    return 1;
  }
}
