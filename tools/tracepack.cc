// pcal-tracepack — convert between trace formats and the packed .pct
// layout the benches replay at memory speed.
//
//   pcal-tracepack pack   <in.trace> <out.pct>     text/PCALTRC1 -> .pct
//   pcal-tracepack unpack <in.pct> <out.trace>     .pct -> text
//   pcal-tracepack info   <file.pct>               header + decode stats
//   pcal-tracepack gen    <workload> <accesses> <out.pct>
//                                                  pack a synthetic workload
//                                                  (any MediaBench spec name)
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "trace/binary_trace.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"
#include "util/error.h"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  pcal-tracepack pack   <in.trace> <out.pct>\n"
         "  pcal-tracepack unpack <in.pct> <out.trace>\n"
         "  pcal-tracepack info   <file.pct>\n"
         "  pcal-tracepack gen    <workload> <accesses> <out.pct>\n";
  return 2;
}

int cmd_pack(const std::string& in, const std::string& out) {
  const pcal::Trace trace = pcal::load_trace_file(in);
  pcal::write_pct_file(trace, out);
  std::cout << "packed " << trace.size() << " accesses -> " << out << " ("
            << pcal::kPctHeaderBytes +
                   trace.size() * pcal::kPctRecordBytes
            << " bytes)\n";
  return 0;
}

int cmd_unpack(const std::string& in, const std::string& out) {
  pcal::BinaryTraceSource source(in);
  const pcal::Trace trace = pcal::Trace::materialize(source);
  pcal::save_trace_file(trace, out, /*binary=*/false);
  std::cout << "unpacked " << trace.size() << " accesses -> " << out << "\n";
  return 0;
}

int cmd_info(const std::string& path) {
  const pcal::PctInfo info = pcal::pct_file_info(path);
  std::uint64_t reads = 0, writes = 0;
  pcal::BinaryTraceSource source(path);
  pcal::MemAccess batch[4096];
  for (;;) {
    const std::size_t n = source.next_batch(batch, 4096);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i)
      (batch[i].kind == pcal::AccessKind::kWrite ? writes : reads) += 1;
  }
  std::cout << path << ": pct v" << info.version << ", " << info.count
            << " records, " << info.file_bytes << " bytes\n"
            << "  reads " << reads << ", writes " << writes << "\n";
  return 0;
}

int cmd_gen(const std::string& workload, const std::string& accesses_str,
            const std::string& out) {
  const long long n = std::atoll(accesses_str.c_str());
  if (n <= 0) {
    std::cerr << "pcal-tracepack: bad access count '" << accesses_str
              << "'\n";
    return 2;
  }
  const pcal::WorkloadSpec spec = pcal::make_mediabench_workload(workload);
  pcal::SyntheticTraceSource source(spec,
                                    static_cast<std::uint64_t>(n));
  // Streamed, not materialized: constant memory for any access count.
  const std::uint64_t written = pcal::write_pct_stream(source, out);
  std::cout << "generated " << written << " accesses of '" << workload
            << "' -> " << out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "pack" && argc == 4) return cmd_pack(argv[2], argv[3]);
    if (cmd == "unpack" && argc == 4) return cmd_unpack(argv[2], argv[3]);
    if (cmd == "info" && argc == 3) return cmd_info(argv[2]);
    if (cmd == "gen" && argc == 5)
      return cmd_gen(argv[2], argv[3], argv[4]);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "pcal-tracepack: " << e.what() << "\n";
    return 1;
  }
}
