// pcalsim — the command-line front-end to the simulator.
//
// Runs one workload on one architecture configuration described by an
// INI file (plus command-line overrides) and prints the full report:
// idleness, energy breakdown, lifetime, cache statistics.
//
// Usage:
//   pcalsim <config.ini> [section.key=value ...]
//   pcalsim --example            # print an annotated example config
//
// Example config:
//   [workload]
//   name = rijndael_i        # a MediaBench name, or uniform/streaming/
//                            # hotspot, or trace:<path>
//   accesses = 2000000
//   [cache]
//   size = 8k
//   line = 16
//   ways = 1
//   [partition]
//   granularity = bank       # monolithic | bank | line | way
//   banks = 4
//   indexing = probing       # static | probing | scrambling
//   updates = 16
//   policy = gated           # gated | drowsy
//   drowsy_window = 0        # extra idle cycles at the drowsy voltage
//   [latency]                # stall cycles (0 = idealized clock)
//   hit = 0
//   miss = 0
//   drowsy_wake = 0
//   gated_wake = 0
//   [contention]             # finite L1 resources (0 = unlimited; see
//   mshrs = 0                # docs/CONTENTION.md)
//   ports = 0                # access ports per bank
//   bandwidth = 0            # fill bytes per cycle toward the next level
//   mshr_latency = 32        # cycles an MSHR stays allocated per miss
//   port_cycles = 1          # bank busy cycles per access
//   [l2]                     # optional second level (size 0 = disabled)
//   size = 0
//   banks = 4
//   granularity = bank
//   breakeven = 64
//   inclusion = noninclusive # noninclusive | inclusive | exclusive | victim
//   hit_latency = 0
//   miss_latency = 0
//   mshrs = 0                # per-level resources ([contention] shapes L1)
//   ports = 0
//   bandwidth = 0
//   [l3]                     # optional third level (same keys as [l2])
//   size = 0
//   [multiprogram]           # optional: interleave several programs in
//   programs = cjpeg+sha     # round-robin quanta (overrides [workload]
//   quantum = 100000         # name); boundaries align re-indexing
//   stride = 1m              # per-program address-space offset
//   [multicore]              # optional: N copies of the stack above a
//   cores = 0                # shared LLC (see docs/MULTICORE.md)
//   llc_size = 64k           # required when cores > 0
//   llc_ways = 8
//   llc_banks = 4
//   llc_breakeven = 64
//   llc_ways_per_core = 0    # > 0 way-partitions the LLC per core
//   llc_mshrs = 0            # finite shared-LLC resources (0 = unlimited)
//   llc_ports = 0
//   llc_bandwidth = 0
//   [core1]                  # optional per-core workload override
//   workload = streaming
#include <algorithm>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "api/pcal.h"
#include "api/timeline.h"
#include "core/experiment.h"
#include "core/multicore.h"
#include "core/run_assembly.h"
#include "trace/multiprogram.h"
#include "trace/trace_io.h"
#include "util/config_file.h"
#include "util/error.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace pcal;

constexpr const char* kExampleConfig = R"(# pcalsim example configuration
[workload]
name = rijndael_i
accesses = 2000000

[cache]
size = 8k
line = 16
ways = 1

[partition]
granularity = bank
banks = 4
indexing = probing
updates = 16
policy = gated
drowsy_window = 0

[latency]
hit = 0
miss = 0
drowsy_wake = 0
gated_wake = 0

# Finite L1 resources, 0 = unlimited (docs/CONTENTION.md):
[contention]
mshrs = 0
ports = 0
bandwidth = 0
mshr_latency = 32
port_cycles = 1

[l2]
size = 0
banks = 4
granularity = bank
breakeven = 64
inclusion = noninclusive
hit_latency = 0
miss_latency = 0

[l3]
size = 0

# Interleave programs in round-robin quanta (overrides workload.name):
# [multiprogram]
# programs = cjpeg+sha
# quantum = 100000

# N cores of the stack above over a shared LLC (docs/MULTICORE.md):
# [multicore]
# cores = 2
# llc_size = 64k
# llc_ways_per_core = 4
# [core1]
# workload = streaming
)";

std::unique_ptr<TraceSource> make_named_source(const ConfigFile& cfg,
                                               const std::string& name,
                                               std::uint64_t accesses) {
  const std::uint64_t footprint =
      cfg.get_u64("workload", "footprint", 64 * 1024);
  if (starts_with(name, "trace:"))
    return std::make_unique<Trace>(load_trace_file(name.substr(6)));
  if (starts_with(name, "multiprog:"))
    return std::make_unique<MultiProgramSource>(
        parse_multiprogram_spec(name.substr(10), footprint), accesses);
  WorkloadSpec spec;
  if (name == "uniform")
    spec = make_uniform_workload(footprint);
  else if (name == "streaming")
    spec = make_streaming_workload(footprint);
  else if (name == "hotspot")
    spec = make_hotspot_workload(footprint);
  else
    spec = make_mediabench_workload(name);
  return std::make_unique<SyntheticTraceSource>(spec, accesses);
}

std::unique_ptr<TraceSource> make_source(const ConfigFile& cfg,
                                         std::uint64_t accesses) {
  // A [multiprogram] section overrides the [workload] name with an
  // interleaved multi-program stream; its quantum boundaries feed the
  // simulator's context-switch-aligned re-indexing.
  const std::string programs =
      cfg.get_string("multiprogram", "programs", "");
  if (!programs.empty()) {
    std::string spec = programs;
    std::replace(spec.begin(), spec.end(), ',', '+');
    MultiProgramConfig mp = parse_multiprogram_spec(
        spec, cfg.get_u64("workload", "footprint", 64 * 1024));
    mp.quantum_accesses =
        cfg.get_u64("multiprogram", "quantum", mp.quantum_accesses);
    mp.address_stride =
        cfg.get_u64("multiprogram", "stride", mp.address_stride);
    mp.validate();
    return std::make_unique<MultiProgramSource>(std::move(mp), accesses);
  }
  return make_named_source(
      cfg, cfg.get_string("workload", "name", "rijndael_i"), accesses);
}

std::string hex_mask(std::uint64_t mask) {
  std::ostringstream os;
  os << "0x" << std::hex << mask;
  return os.str();
}

/// The [multicore] run path: N copies of the configured stack over a
/// shared LLC, per-core workloads from [core<k>] sections.
int run_multicore(const ConfigFile& cfg, MultiCoreConfig mc,
                  std::uint64_t num_cores, std::uint64_t accesses,
                  const std::string& timeline_path) {
  const std::string default_name =
      cfg.get_string("workload", "name", "rijndael_i");
  std::vector<std::unique_ptr<TraceSource>> owned;
  std::vector<TraceSource*> sources;
  for (std::uint64_t k = 0; k < num_cores; ++k) {
    const std::string name = cfg.get_string(
        "core" + std::to_string(k), "workload", default_name);
    owned.push_back(make_named_source(cfg, name, accesses));
    sources.push_back(owned.back().get());
  }

  api::TimelineRecorder recorder;
  IntervalObserver observer;
  if (!timeline_path.empty()) {
    recorder.price_with(mc);
    observer = recorder.observer();
  }

  AgingContext aging;
  const MultiCoreResult mr =
      MultiCoreSystem(std::move(mc)).run(sources, &aging.lut(), observer);
  const SimResult& r = mr.system;

  std::cout << "pcalsim: " << r.workload << " on " << r.config_label
            << "\n"
            << "accesses: " << r.accesses << ", cycles: " << r.total_cycles
            << " total, " << r.stall_cycles
            << " stalled, avg access latency "
            << TextTable::num(r.avg_access_latency(), 3) << "\n";
  if (r.mshr_stall_cycles + r.port_stall_cycles + r.bw_stall_cycles > 0)
    std::cout << "contention stalls: mshr " << r.mshr_stall_cycles
              << ", port " << r.port_stall_cycles << ", bandwidth "
              << r.bw_stall_cycles << "\n";
  std::cout << "\n";

  TextTable cores({"core", "workload", "accesses", "stalls", "L1 hit",
                   "LLC acc", "LLC hit", "way mask", "energy (pJ)",
                   "idleness"});
  for (std::size_t k = 0; k < mr.cores.size(); ++k) {
    const CoreResult& c = mr.cores[k];
    cores.add_row({std::to_string(k), c.workload,
                   std::to_string(c.accesses),
                   std::to_string(c.stall_cycles),
                   TextTable::num(c.l1_hit_rate(), 4),
                   std::to_string(c.llc_stats.accesses),
                   TextTable::num(c.llc_hit_rate(), 4),
                   hex_mask(c.llc_way_mask),
                   TextTable::num(c.energy.partitioned.total_pj(), 0),
                   TextTable::pct(c.avg_residency, 2)});
  }
  cores.render(std::cout);

  const CacheStats& llc_stats = r.level_stats.back();
  const EnergyBreakdown& e = r.energy.partitioned;
  std::cout << "\nLLC: hit rate " << TextTable::num(llc_stats.hit_rate(), 4)
            << " (" << llc_stats.accesses << " accesses, " << llc_stats.hits
            << " hits, " << llc_stats.misses << " misses)\n"
            << "energy (pJ): total " << TextTable::num(e.total_pj(), 0)
            << ", saving vs monolithic baseline "
            << TextTable::pct(r.energy_saving(), 2) << " %\n"
            << "system idleness: " << TextTable::pct(r.avg_residency(), 2)
            << " %, lifetime " << TextTable::num(r.lifetime_years(), 3)
            << " years\n";

  if (!timeline_path.empty()) {
    recorder.set_run_label(r.workload + " on " + r.config_label);
    recorder.write_json_file(timeline_path);
    std::cerr << "pcalsim: timeline written to " << timeline_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--example") {
    std::cout << kExampleConfig;
    return 0;
  }
  // --timeline <out.json>: write the per-interval power-state timeline
  // artifact (docs/TIMELINE.md).  Off by default — without the flag no
  // observer is attached and the run (and its output) is bit-identical.
  std::string timeline_path;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeline") {
      if (i + 1 >= argc) {
        std::cerr << "pcalsim: --timeline needs an output path\n";
        return 2;
      }
      timeline_path = argv[++i];
      continue;
    }
    args.push_back(arg);
  }
  if (args.empty()) {
    std::cerr << "usage: pcalsim <config.ini> [section.key=value ...] "
                 "[--timeline out.json]\n"
                 "       pcalsim --example\n";
    return 2;
  }
  try {
    ConfigFile cfg = ConfigFile::load(args[0]);
    for (std::size_t i = 1; i < args.size(); ++i)
      cfg.apply_override(args[i]);

    // Translate the INI sections into the shared key -> config path
    // (core/run_assembly.h) pcalsweep and the api facade use.  Every
    // value is passed explicitly with pcalsim's own ConfigFile default,
    // so pcalsim keeps its documented defaults (an [l3] does NOT
    // inherit [l2] here) while the application/validation code is the
    // shared one.  Staged through api::RunConfig so validation reports
    // every problem at once, not just the first.
    api::RunConfig rc;
    const auto set_num = [&](const std::string& key, std::uint64_t v) {
      rc.set(key, std::to_string(v));
    };
    rc.set("granularity",
           cfg.get_string("partition", "granularity", "bank"));
    set_num("cache_size", cfg.get_u64("cache", "size", 8192));
    set_num("line_size", cfg.get_u64("cache", "line", 16));
    set_num("ways", cfg.get_u64("cache", "ways", 1));
    set_num("banks", cfg.get_u64("partition", "banks", 4));
    rc.set("indexing", cfg.get_string("partition", "indexing", "probing"));
    set_num("updates", cfg.get_u64("partition", "updates", 16));
    // 0 = derive the breakeven from the energy model; line-grain sleep
    // hardware usually wants an explicit value (e.g. 28).
    set_num("breakeven", cfg.get_u64("partition", "breakeven", 0));
    rc.set("policy", cfg.get_string("partition", "policy", "gated"));
    set_num("drowsy_window", cfg.get_u64("partition", "drowsy_window", 0));
    // The L1 latency point; all-zero (the default) keeps the idealized
    // one-access-per-cycle clock.  Wakeup latencies are shared by every
    // level unless a level overrides them.
    set_num("hit_latency", cfg.get_u64("latency", "hit", 0));
    set_num("miss_latency", cfg.get_u64("latency", "miss", 0));
    set_num("drowsy_wake", cfg.get_u64("latency", "drowsy_wake", 0));
    set_num("gated_wake", cfg.get_u64("latency", "gated_wake", 0));
    // Finite L1 resources (core/contention.h); all-zero limits keep the
    // run bit-identical to a config without a [contention] section.
    set_num("mshrs", cfg.get_u64("contention", "mshrs", 0));
    set_num("ports", cfg.get_u64("contention", "ports", 0));
    set_num("bandwidth", cfg.get_u64("contention", "bandwidth", 0));
    set_num("mshr_latency", cfg.get_u64("contention", "mshr_latency", 32));
    set_num("port_cycles", cfg.get_u64("contention", "port_cycles", 1));
    // Optional lower levels: [l2] / [l3], size = 0 disables a level.
    for (const std::string section : {"l2", "l3"}) {
      if (cfg.get_u64(section, "size", 0) == 0) continue;
      const std::string p = section + "_";
      const auto lvl_num = [&](const char* key, std::uint64_t v) {
        rc.set(p + key, std::to_string(v));
      };
      lvl_num("size", cfg.get_u64(section, "size", 0));
      rc.set(p + "inclusion",
             cfg.get_string(section, "inclusion", "noninclusive"));
      // Geometry and wakeup latencies default to the L1 values staged
      // above (the documented make_level inheritance).
      lvl_num("line",
              cfg.get_u64(section, "line", cfg.get_u64("cache", "line", 16)));
      lvl_num("ways",
              cfg.get_u64(section, "ways", cfg.get_u64("cache", "ways", 1)));
      rc.set(p + "granularity",
             cfg.get_string(section, "granularity", "bank"));
      lvl_num("banks", cfg.get_u64(section, "banks", 4));
      rc.set(p + "indexing", cfg.get_string(section, "indexing", "static"));
      lvl_num("breakeven", cfg.get_u64(section, "breakeven", 64));
      rc.set(p + "policy", cfg.get_string(section, "policy", "gated"));
      lvl_num("drowsy_window", cfg.get_u64(section, "drowsy_window", 0));
      lvl_num("hit_latency", cfg.get_u64(section, "hit_latency", 0));
      lvl_num("miss_latency", cfg.get_u64(section, "miss_latency", 0));
      lvl_num("drowsy_wake",
              cfg.get_u64(section, "drowsy_wake",
                          cfg.get_u64("latency", "drowsy_wake", 0)));
      lvl_num("gated_wake",
              cfg.get_u64(section, "gated_wake",
                          cfg.get_u64("latency", "gated_wake", 0)));
      // Per-level resource limits; the timing scalars are shared with
      // the [contention] section (one resource technology).
      lvl_num("mshrs", cfg.get_u64(section, "mshrs", 0));
      lvl_num("ports", cfg.get_u64(section, "ports", 0));
      lvl_num("bandwidth", cfg.get_u64(section, "bandwidth", 0));
    }

    const std::uint64_t accesses =
        cfg.get_u64("workload", "accesses", 2'000'000);
    set_num("accesses", accesses);

    const std::uint64_t num_cores = cfg.get_u64("multicore", "cores", 0);
    if (num_cores > 0) {
      set_num("cores", num_cores);
      set_num("llc_size", cfg.get_u64("multicore", "llc_size", 0));
      rc.set("llc_inclusion",
             cfg.get_string("multicore", "inclusion", "noninclusive"));
      set_num("llc_ways", cfg.get_u64("multicore", "llc_ways", 8));
      set_num("llc_banks", cfg.get_u64("multicore", "llc_banks", 4));
      set_num("llc_breakeven",
              cfg.get_u64("multicore", "llc_breakeven", 64));
      set_num("llc_ways_per_core",
              cfg.get_u64("multicore", "llc_ways_per_core", 0));
      set_num("llc_mshrs", cfg.get_u64("multicore", "llc_mshrs", 0));
      set_num("llc_ports", cfg.get_u64("multicore", "llc_ports", 0));
      set_num("llc_bandwidth",
              cfg.get_u64("multicore", "llc_bandwidth", 0));
    }

    // Structured pre-flight: every bad key/value and every invalid
    // combination reported at once (api::RunConfig::validate), instead
    // of failing on the first.
    const std::vector<api::ConfigIssue> issues = rc.validate();
    if (!issues.empty()) {
      std::cerr << "pcalsim: invalid configuration:\n";
      for (const api::ConfigIssue& issue : issues) {
        std::cerr << "  ";
        if (!issue.key.empty())
          std::cerr << issue.key << " = " << issue.value << ": ";
        std::cerr << issue.reason << "\n";
      }
      return 1;
    }

    RunAssembly asmb;
    for (const auto& [key, value] : rc.entries()) asmb.set(key, value);
    RunAssembly::Assembled assembled = asmb.assemble();
    if (assembled.multicore)
      return run_multicore(cfg, std::move(*assembled.multicore), num_cores,
                           accesses, timeline_path);
    const SimConfig& sim = assembled.config;

    auto source = make_source(cfg, accesses);

    api::TimelineRecorder recorder;
    IntervalObserver observer;
    if (!timeline_path.empty()) {
      recorder.price_with(sim);
      observer = recorder.observer();
    }

    AgingContext aging;
    const SimResult r = Simulator(sim).run(*source, &aging.lut(), observer);

    std::cout << "pcalsim: " << r.workload << " on " << r.config_label
              << "\n"
              << "accesses: " << r.accesses
              << ", breakeven: " << r.breakeven_cycles << " cycles"
              << ", re-indexing updates: " << r.reindex_updates_applied
              << "\n"
              << "cycles: " << r.total_cycles << " total, "
              << r.stall_cycles << " stalled, avg access latency "
              << TextTable::num(r.avg_access_latency(), 3) << "\n";
    if (r.mshr_stall_cycles + r.port_stall_cycles + r.bw_stall_cycles > 0)
      std::cout << "contention stalls: mshr " << r.mshr_stall_cycles
                << ", port " << r.port_stall_cycles << ", bandwidth "
                << r.bw_stall_cycles << "\n";
    std::cout << "\n";

    // At line granularity there are hundreds of units; cap the table.
    const std::size_t shown = std::min<std::size_t>(r.units.size(), 32);
    TextTable units({"unit", "accesses", "sleep residency",
                     "idle intervals > BE", "sleep episodes",
                     "lifetime (y)"});
    for (std::size_t u = 0; u < shown; ++u) {
      const UnitResult& ur = r.units[u];
      units.add_row({std::to_string(u), std::to_string(ur.accesses),
                     TextTable::pct(ur.sleep_residency, 2),
                     TextTable::pct(ur.useful_idleness_count, 2),
                     std::to_string(ur.sleep_episodes),
                     TextTable::num(ur.lifetime_years, 3)});
    }
    units.render(std::cout);
    if (shown < r.units.size())
      std::cout << "... (" << r.units.size() - shown << " more units)\n";

    std::cout << "\ncache: hit rate "
              << TextTable::num(r.cache_stats.hit_rate(), 4) << " ("
              << r.cache_stats.hits << " hits, " << r.cache_stats.misses
              << " misses, " << r.cache_stats.writebacks
              << " writebacks, " << r.cache_stats.flushes << " flushes)\n";
    for (std::size_t lvl = 1; lvl < r.num_levels(); ++lvl) {
      const CacheStats& s = r.level_stats[lvl];
      std::cout << "L" << (lvl + 1) << ": hit rate "
                << TextTable::num(s.hit_rate(), 4) << " (" << s.accesses
                << " accesses, " << s.hits << " hits, " << s.misses
                << " misses)\n";
    }

    const EnergyBreakdown& e = r.energy.partitioned;
    std::cout << "energy (pJ): dynamic " << TextTable::num(e.dynamic_pj, 0)
              << ", leakage active "
              << TextTable::num(e.leakage_active_pj, 0)
              << ", leakage drowsy "
              << TextTable::num(e.leakage_drowsy_pj, 0)
              << ", leakage gated/retention "
              << TextTable::num(e.leakage_retention_pj, 0)
              << ", transitions " << TextTable::num(e.transition_pj, 0)
              << "\n"
              << "saving vs monolithic baseline: "
              << TextTable::pct(r.energy_saving(), 2) << " %\n"
              << "cache lifetime: " << TextTable::num(r.lifetime_years(), 3)
              << " years (limiting bank "
              << (r.lifetime ? r.lifetime->limiting_bank : 0) << ")\n";

    if (!timeline_path.empty()) {
      recorder.set_run_label(r.workload + " on " + r.config_label);
      recorder.write_json_file(timeline_path);
      std::cerr << "pcalsim: timeline written to " << timeline_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pcalsim: error: " << e.what() << "\n";
    return 1;
  }
}
