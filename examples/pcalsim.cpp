// pcalsim — the command-line front-end to the simulator.
//
// Runs one workload on one architecture configuration described by an
// INI file (plus command-line overrides) and prints the full report:
// idleness, energy breakdown, lifetime, cache statistics.
//
// Usage:
//   pcalsim <config.ini> [section.key=value ...]
//   pcalsim --example            # print an annotated example config
//
// Example config:
//   [workload]
//   name = rijndael_i        # a MediaBench name, or uniform/streaming/
//                            # hotspot, or trace:<path>
//   accesses = 2000000
//   [cache]
//   size = 8k
//   line = 16
//   ways = 1
//   [partition]
//   granularity = bank       # monolithic | bank | line | way
//   banks = 4
//   indexing = probing       # static | probing | scrambling
//   updates = 16
//   policy = gated           # gated | drowsy
//   drowsy_window = 0        # extra idle cycles at the drowsy voltage
//   [l2]                     # optional second level (size 0 = disabled)
//   size = 0
//   banks = 4
//   granularity = bank
//   breakeven = 64
#include <algorithm>
#include <iostream>

#include "core/experiment.h"
#include "trace/multiprogram.h"
#include "trace/trace_io.h"
#include "util/config_file.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace pcal;

constexpr const char* kExampleConfig = R"(# pcalsim example configuration
[workload]
name = rijndael_i
accesses = 2000000

[cache]
size = 8k
line = 16
ways = 1

[partition]
granularity = bank
banks = 4
indexing = probing
updates = 16
policy = gated
drowsy_window = 0

[l2]
size = 0
banks = 4
granularity = bank
breakeven = 64
)";

std::unique_ptr<TraceSource> make_source(const ConfigFile& cfg,
                                         std::uint64_t accesses) {
  const std::string name =
      cfg.get_string("workload", "name", "rijndael_i");
  if (starts_with(name, "trace:")) {
    auto trace = std::make_unique<Trace>(load_trace_file(name.substr(6)));
    return trace;
  }
  WorkloadSpec spec;
  if (name == "uniform")
    spec = make_uniform_workload(cfg.get_u64("workload", "footprint",
                                             64 * 1024));
  else if (name == "streaming")
    spec = make_streaming_workload(cfg.get_u64("workload", "footprint",
                                               64 * 1024));
  else if (name == "hotspot")
    spec = make_hotspot_workload(cfg.get_u64("workload", "footprint",
                                             64 * 1024));
  else
    spec = make_mediabench_workload(name);
  return std::make_unique<SyntheticTraceSource>(spec, accesses);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--example") {
    std::cout << kExampleConfig;
    return 0;
  }
  if (argc < 2) {
    std::cerr << "usage: pcalsim <config.ini> [section.key=value ...]\n"
                 "       pcalsim --example\n";
    return 2;
  }
  try {
    ConfigFile cfg = ConfigFile::load(argv[1]);
    for (int i = 2; i < argc; ++i) cfg.apply_override(argv[i]);

    SimConfig sim;
    sim.granularity = granularity_from_string(
        cfg.get_string("partition", "granularity", "bank"));
    sim.cache.size_bytes = cfg.get_u64("cache", "size", 8192);
    sim.cache.line_bytes = cfg.get_u64("cache", "line", 16);
    sim.cache.ways = cfg.get_u64("cache", "ways", 1);
    sim.partition.num_banks = cfg.get_u64("partition", "banks", 4);
    sim.indexing = indexing_kind_from_string(
        cfg.get_string("partition", "indexing", "probing"));
    sim.reindex_updates = cfg.get_u64("partition", "updates", 16);
    // 0 = derive the breakeven from the energy model; line-grain sleep
    // hardware usually wants an explicit value (e.g. 28).
    sim.breakeven_override = cfg.get_u64("partition", "breakeven", 0);
    sim.policy = power_policy_from_string(
        cfg.get_string("partition", "policy", "gated"));
    sim.drowsy_window_cycles =
        cfg.get_u64("partition", "drowsy_window", 0);
    // Optional second level: [l2] size = 0 keeps the run single-level.
    if (cfg.get_u64("l2", "size", 0) > 0) {
      CacheTopology l2;
      l2.cache.size_bytes = cfg.get_u64("l2", "size", 0);
      l2.cache.line_bytes =
          cfg.get_u64("l2", "line", sim.cache.line_bytes);
      l2.cache.ways = cfg.get_u64("l2", "ways", sim.cache.ways);
      l2.granularity = granularity_from_string(
          cfg.get_string("l2", "granularity", "bank"));
      l2.partition.num_banks = cfg.get_u64("l2", "banks", 4);
      l2.indexing = indexing_kind_from_string(
          cfg.get_string("l2", "indexing", "static"));
      l2.breakeven_cycles = cfg.get_u64("l2", "breakeven", 64);
      l2.policy = power_policy_from_string(
          cfg.get_string("l2", "policy", "gated"));
      l2.drowsy_window_cycles = cfg.get_u64("l2", "drowsy_window", 0);
      sim.l2 = l2;
    }
    sim.validate();

    const std::uint64_t accesses =
        cfg.get_u64("workload", "accesses", 2'000'000);
    auto source = make_source(cfg, accesses);

    AgingContext aging;
    const SimResult r = Simulator(sim).run(*source, &aging.lut());

    std::cout << "pcalsim: " << r.workload << " on " << r.config_label
              << "\n"
              << "accesses: " << r.accesses
              << ", breakeven: " << r.breakeven_cycles << " cycles"
              << ", re-indexing updates: " << r.reindex_updates_applied
              << "\n\n";

    // At line granularity there are hundreds of units; cap the table.
    const std::size_t shown = std::min<std::size_t>(r.units.size(), 32);
    TextTable units({"unit", "accesses", "sleep residency",
                     "idle intervals > BE", "sleep episodes",
                     "lifetime (y)"});
    for (std::size_t u = 0; u < shown; ++u) {
      const UnitResult& ur = r.units[u];
      units.add_row({std::to_string(u), std::to_string(ur.accesses),
                     TextTable::pct(ur.sleep_residency, 2),
                     TextTable::pct(ur.useful_idleness_count, 2),
                     std::to_string(ur.sleep_episodes),
                     TextTable::num(ur.lifetime_years, 3)});
    }
    units.render(std::cout);
    if (shown < r.units.size())
      std::cout << "... (" << r.units.size() - shown << " more units)\n";

    std::cout << "\ncache: hit rate "
              << TextTable::num(r.cache_stats.hit_rate(), 4) << " ("
              << r.cache_stats.hits << " hits, " << r.cache_stats.misses
              << " misses, " << r.cache_stats.writebacks
              << " writebacks, " << r.cache_stats.flushes << " flushes)\n";
    if (r.l2_stats) {
      std::cout << "L2: hit rate "
                << TextTable::num(r.l2_stats->hit_rate(), 4) << " ("
                << r.l2_stats->accesses << " accesses = L1 misses, "
                << r.l2_stats->hits << " hits)\n";
    }

    const EnergyBreakdown& e = r.energy.partitioned;
    std::cout << "energy (pJ): dynamic " << TextTable::num(e.dynamic_pj, 0)
              << ", leakage active "
              << TextTable::num(e.leakage_active_pj, 0)
              << ", leakage drowsy "
              << TextTable::num(e.leakage_drowsy_pj, 0)
              << ", leakage gated/retention "
              << TextTable::num(e.leakage_retention_pj, 0)
              << ", transitions " << TextTable::num(e.transition_pj, 0)
              << "\n"
              << "saving vs monolithic baseline: "
              << TextTable::pct(r.energy_saving(), 2) << " %\n"
              << "cache lifetime: " << TextTable::num(r.lifetime_years(), 3)
              << " years (limiting bank "
              << (r.lifetime ? r.lifetime->limiting_bank : 0) << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pcalsim: error: " << e.what() << "\n";
    return 1;
  }
}
