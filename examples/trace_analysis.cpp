// Trace import and analysis: load a trace file (text or binary; a sample
// is generated if no path is given), characterize it, and evaluate it on
// the partitioned architecture.
//
// This is the path a user with *real* program traces (e.g. from a full
// system simulator) would take instead of the built-in synthetic suite.
//
// Usage: trace_analysis [trace_file]
#include <iostream>

#include "core/experiment.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pcal;

  Trace trace;
  if (argc > 1) {
    trace = load_trace_file(argv[1]);
    std::cout << "loaded " << trace.size() << " accesses from " << argv[1]
              << "\n";
  } else {
    // No file given: synthesize a sample, save it in both formats, and
    // reload it — demonstrating the I/O round trip.
    auto spec = make_mediabench_workload("fft_1");
    SyntheticTraceSource src(spec, 500'000);
    trace = Trace::materialize(src);
    save_trace_file(trace, "fft_1_sample.trc", /*binary=*/true);
    std::cout << "no trace file given; generated 'fft_1' sample and saved "
                 "it to fft_1_sample.trc (binary format)\n";
    trace = load_trace_file("fft_1_sample.trc");
  }

  // ---- characterize the trace ----
  const TraceStats stats = compute_trace_stats(trace, 16);
  std::cout << "\ntrace characteristics (16B lines):\n"
            << "  accesses:        " << stats.accesses << "\n"
            << "  write fraction:  " << stats.write_fraction << "\n"
            << "  footprint:       " << format_size(stats.footprint_bytes)
            << " (" << stats.distinct_lines << " lines)\n"
            << "  reuse fraction:  " << stats.reuse_fraction << "\n"
            << "  mean reuse dist: " << stats.mean_reuse_distance
            << " accesses\n";

  // ---- evaluate on the partitioned cache ----
  AgingContext aging;
  TextTable table({"architecture", "LT (years)", "Esav", "hit rate"});
  for (auto [label, cfg] :
       {std::pair<const char*, SimConfig>{
            "monolithic", monolithic_variant(paper_config(8192, 16, 4))},
        {"static 4-bank", static_variant(paper_config(8192, 16, 4))},
        {"probing 4-bank", paper_config(8192, 16, 4)},
        {"probing 8-bank", paper_config(8192, 16, 8)}}) {
    trace.reset();
    const SimResult r = Simulator(cfg).run(trace, &aging.lut());
    table.add_row({label, TextTable::num(r.lifetime_years(), 2),
                   TextTable::pct(r.energy_saving(), 1),
                   TextTable::num(r.cache_stats.hit_rate(), 3)});
  }
  std::cout << "\n";
  table.render(std::cout);
  return 0;
}
