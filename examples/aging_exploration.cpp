// Architecture exploration: sweep bank count and indexing policy for one
// workload and print the design space a cache architect would look at —
// the scenario motivating the paper (choose M and the indexing scheme for
// a given SoC).
//
// Usage: aging_exploration [workload] [cache_kb]
//   e.g. aging_exploration rijndael_i 16
#include <iostream>
#include <string>

#include "core/enum_strings.h"
#include "core/experiment.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pcal;

  const std::string workload_name = argc > 1 ? argv[1] : "dijkstra";
  const std::uint64_t cache_kb =
      argc > 2 ? std::stoull(argv[2]) : 8;

  AgingContext aging;
  const WorkloadSpec workload = make_mediabench_workload(workload_name);
  std::cout << "design-space exploration for '" << workload_name << "', "
            << cache_kb << "kB direct-mapped cache, 16B lines\n\n";

  TextTable table({"M", "indexing", "breakeven", "avg idleness",
                   "min idleness", "LT (years)", "vs mono", "Esav",
                   "hit rate"});

  double mono_lt = 0.0;
  for (std::uint64_t m : {1u, 2u, 4u, 8u, 16u}) {
    for (auto kind : {IndexingKind::kStatic, IndexingKind::kProbing,
                      IndexingKind::kScrambling}) {
      if (m == 1 && kind != IndexingKind::kStatic) continue;
      SimConfig cfg = paper_config(cache_kb * 1024, 16, m);
      cfg.indexing = kind;
      if (kind == IndexingKind::kStatic) cfg.reindex_updates = 0;
      const SimResult r =
          run_workload(workload, cfg, aging, kDefaultTraceAccesses);
      if (m == 1) mono_lt = r.lifetime_years();
      table.add_row({std::to_string(m), to_string(kind),
                     std::to_string(r.breakeven_cycles),
                     TextTable::pct(r.avg_residency(), 1),
                     TextTable::pct(r.min_residency(), 1),
                     TextTable::num(r.lifetime_years(), 2),
                     TextTable::num(r.lifetime_years() / mono_lt, 2) + "x",
                     TextTable::pct(r.energy_saving(), 1),
                     TextTable::num(r.cache_stats.hit_rate(), 3)});
    }
  }
  table.render(std::cout);
  std::cout << "\nreading guide: static indexing is capped by the *least* "
               "idle bank (min idleness); probing/scrambling convert the "
               "*average* idleness into lifetime.  Larger M exposes more "
               "idleness but adds wiring overhead to Esav.  Scrambling "
               "trails probing at the default 16 updates per run — it only "
               "converges to uniform asymptotically (paper §IV-B.2); rerun "
               "with more updates and the gap closes.\n";
  return 0;
}
