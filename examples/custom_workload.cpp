// Building a custom synthetic workload from scratch, and inspecting the
// physics underneath the lifetime numbers.
//
// Scenario: an embedded vision pipeline with a hot convolution kernel, a
// periodic feature-matching phase, and a rarely-touched configuration
// region — the archetypal "two banks do all the work" pattern the paper's
// re-indexing fixes.
#include <iostream>

#include "aging/characterizer.h"
#include "core/experiment.h"
#include "util/table.h"

int main() {
  using namespace pcal;

  // ---- define the workload stream by stream ----
  WorkloadSpec spec;
  spec.name = "vision-pipeline";
  spec.footprint_bytes = 64 * 1024;
  spec.window_len = 2000;
  spec.write_fraction = 0.35;
  spec.seed = 2024;

  StreamSpec conv;  // hot convolution kernel: always running, tight loop
  conv.range_begin = 0;
  conv.range_end = 2048;
  conv.schedule = StreamSchedule::kAlways;
  conv.pattern = StreamPattern::kZipf;
  conv.zipf_s = 1.1;
  spec.streams.push_back(conv);

  StreamSpec match;  // feature matching: bursts, 30% duty
  match.range_begin = 2048;
  match.range_end = 6144;
  match.duty = 0.30;
  match.schedule = StreamSchedule::kBlocked;
  match.burst_len = 12;
  match.pattern = StreamPattern::kStrided;
  match.stride_bytes = 128;
  spec.streams.push_back(match);

  StreamSpec config_region;  // configuration tables: touched rarely
  config_region.range_begin = 6144;
  config_region.range_end = 8192;
  config_region.duty = 0.02;
  config_region.pattern = StreamPattern::kSequential;
  spec.streams.push_back(config_region);

  spec.validate();

  // ---- run the three architectures ----
  AgingContext aging;
  const auto r = run_three_way(spec, paper_config(8192, 16, 4), aging,
                               2'000'000);

  TextTable table({"architecture", "LT (years)", "min idleness",
                   "avg idleness", "Esav"});
  const auto add = [&](const char* label, const SimResult& res) {
    table.add_row({label, TextTable::num(res.lifetime_years(), 2),
                   TextTable::pct(res.min_residency(), 1),
                   TextTable::pct(res.avg_residency(), 1),
                   TextTable::pct(res.energy_saving(), 1)});
  };
  add("monolithic", r.monolithic);
  add("static 4-bank", r.static_pm);
  add("probing 4-bank", r.reindexed);
  table.render(std::cout);

  // ---- look underneath: what the aging model says ----
  const auto& chr = aging.characterizer();
  std::cout << "\nphysics detail (calibrated 45nm-class cell):\n"
            << "  fresh read SNM:            " << chr.nominal_snm()
            << " V\n"
            << "  critical dVth (p0 = 0.5):  " << chr.critical_shift(0.5)
            << " V\n"
            << "  drowsy stress factor:      " << chr.sleep_stress_factor()
            << "\n";
  std::cout << "  lifetime law LT(S): ";
  for (double s : {0.0, 0.25, 0.5, 0.75}) {
    std::cout << "S=" << s << " -> "
              << TextTable::num(chr.lifetime_years(0.5, s), 2) << "y  ";
  }
  std::cout << "\n\nthe static partition dies with its hottest bank ("
            << "min idleness above); re-indexing lets the same silicon "
            << "live on the average instead.\n";
  return 0;
}
