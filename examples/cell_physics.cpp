// The characterization framework, exposed: regenerates the per-cell
// physics artifacts behind the lifetime numbers as CSV blocks suitable
// for plotting — the software analogue of the paper's "SPICE-based
// characterization framework" (§IV-A).
//
//   (1) read-condition inverter VTCs, fresh and aged (the butterfly);
//   (2) read SNM vs symmetric ΔVth (how the margin collapses);
//   (3) SNM-vs-time aging profiles for several (p0, P_sleep) operating
//       points, with the 20% end-of-life criterion marked;
//   (4) the resulting lifetime map over sleep residency.
#include <iostream>

#include "aging/characterizer.h"
#include "aging/snm.h"
#include "util/table.h"

int main() {
  using namespace pcal;

  AgingParams params = AgingParams::st45();
  CellAgingCharacterizer chr(params);
  chr.calibrate();
  const SramCell cell(params.cell);

  std::cout << "# pcal cell characterization (calibrated: nominal lifetime "
            << TextTable::num(chr.lifetime_years(0.5, 0.0), 3)
            << " y, gamma " << TextTable::num(chr.sleep_stress_factor(), 3)
            << ", SNM0 " << TextTable::num(chr.nominal_snm(), 4) << " V)\n";

  // (1) butterfly curves
  std::cout << "\n# butterfly: vin, vout_fresh, vout_aged(100mV)\n";
  const std::size_t points = 64;
  for (std::size_t i = 0; i < points; ++i) {
    const double vin = params.cell.vdd * static_cast<double>(i) /
                       static_cast<double>(points - 1);
    std::cout << TextTable::num(vin, 4) << ","
              << TextTable::num(cell.inverter_vtc(vin, 0.0), 4) << ","
              << TextTable::num(cell.inverter_vtc(vin, 0.1), 4) << "\n";
  }

  // (2) read SNM vs symmetric shift
  std::cout << "\n# snm_vs_shift: dvth_V, read_snm_V, degradation_pct\n";
  for (double dv = 0.0; dv <= 0.30001; dv += 0.02) {
    const double snm = read_snm(cell, dv, dv).snm;
    std::cout << TextTable::num(dv, 2) << "," << TextTable::num(snm, 4)
              << ","
              << TextTable::num((1.0 - snm / chr.nominal_snm()) * 100, 1)
              << "\n";
  }

  // (3) SNM aging profiles
  std::cout << "\n# aging_profile: years, snm[p0=.5 S=0], snm[p0=.5 S=.42],"
               " snm[p0=.9 S=0], threshold\n";
  const double threshold = 0.8 * chr.nominal_snm();
  for (double t = 0.25; t <= 8.0001; t += 0.25) {
    std::cout << TextTable::num(t, 2) << ","
              << TextTable::num(chr.snm_after(t, 0.5, 0.0), 4) << ","
              << TextTable::num(chr.snm_after(t, 0.5, 0.42), 4) << ","
              << TextTable::num(chr.snm_after(t, 0.9, 0.0), 4) << ","
              << TextTable::num(threshold, 4) << "\n";
  }

  // (4) lifetime vs sleep residency
  std::cout << "\n# lifetime_map: sleep_residency, lifetime_years, "
               "paper_fit\n";
  for (double s = 0.0; s <= 0.9501; s += 0.05) {
    std::cout << TextTable::num(s, 2) << ","
              << TextTable::num(chr.lifetime_years(0.5, s), 3) << ","
              << TextTable::num(2.93 / (1.0 - s * (1.0 - 0.226)), 3)
              << "\n";
  }
  std::cout << "\n# DRV of the fresh cell: "
            << TextTable::num(data_retention_voltage(cell, 0.0, 0.0), 3)
            << " V (drowsy state retains at "
            << TextTable::num(AgingParams::st45().vdd_retention, 2)
            << " V)\n";
  return 0;
}
