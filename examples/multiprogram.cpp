// Multiprogrammed workload with context-switch piggybacked re-indexing.
//
// The paper's deployment model: updates are "associated to any cache flush
// occurring in the system" (context switches), so re-indexing costs zero
// extra flushes.  This example runs three programs in round-robin quanta
// and compares:
//   (1) static indexing (no updates),
//   (2) re-indexing piggybacked on quantum boundaries (updates coincide
//       with flushes the system performs anyway),
//   (3) the same update count fired mid-quantum (worst-case alignment).
// (2) and (3) age identically; the only difference is who pays the flush.
#include <iostream>

#include "core/experiment.h"
#include "trace/multiprogram.h"
#include "util/table.h"

int main() {
  using namespace pcal;

  MultiProgramConfig mp;
  mp.programs = {make_mediabench_workload("sha"),
                 make_mediabench_workload("cjpeg"),
                 make_mediabench_workload("dijkstra")};
  mp.quantum_accesses = 125'000;
  const std::uint64_t total = 3'000'000;  // 24 quanta -> 23 context switches

  AgingContext aging;
  TextTable table({"configuration", "LT (years)", "avg idleness",
                   "hit rate", "updates", "Esav"});

  const auto run = [&](const char* label, SimConfig cfg) {
    MultiProgramSource src(mp, total);
    const SimResult r = Simulator(cfg).run(src, &aging.lut());
    table.add_row({label, TextTable::num(r.lifetime_years(), 2),
                   TextTable::pct(r.avg_residency(), 1),
                   TextTable::num(r.cache_stats.hit_rate(), 4),
                   std::to_string(r.reindex_updates_applied),
                   TextTable::pct(r.energy_saving(), 1)});
    return r;
  };

  run("static (no re-indexing)",
      static_variant(paper_config(8192, 16, 4)));

  // Piggybacked: one update per context switch -> 23 updates over the
  // run.  The simulator spreads updates evenly, which with the interval
  // equal to the quantum is exactly quantum-aligned.
  SimConfig piggy = paper_config(8192, 16, 4);
  piggy.reindex_updates = total / mp.quantum_accesses - 1;
  run("probing, piggybacked on context switches", piggy);

  // Misaligned: same number of rotations, but fired between switches, so
  // every one is an *extra* flush on top of the OS's own.
  SimConfig misaligned = piggy;
  misaligned.reindex_updates = piggy.reindex_updates - 1;  // never aligns
  run("probing, mid-quantum updates (extra flushes)", misaligned);

  table.render(std::cout);
  std::cout << "\nnote: the multiprogrammed mix is naturally friendlier to "
               "re-indexing than any single program — three working sets "
               "rotate through the banks even between updates, and each "
               "context switch already costs a flush, which is where the "
               "paper hides the update.\n";
  return 0;
}
