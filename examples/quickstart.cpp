// Quickstart: simulate one workload on the paper's reference architecture
// and print the three numbers the paper is about — energy saving, lifetime
// without re-indexing, lifetime with re-indexing.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/experiment.h"

int main() {
  using namespace pcal;

  // 1. Build the calibrated aging context once per process.  This runs the
  //    cell characterization (alpha-power 6T cell + NBTI model), calibrates
  //    the nominal cell lifetime to 2.93 years, and builds the
  //    (p0, P_sleep) -> lifetime lookup table.
  AgingContext aging;
  std::cout << "nominal cell lifetime: " << aging.nominal_lifetime_years()
            << " years, drowsy stress factor gamma = "
            << aging.sleep_stress_factor() << "\n\n";

  // 2. Pick a workload.  The library ships the paper's 18 MediaBench-like
  //    synthetic workloads; `cjpeg` is a typical one.
  const WorkloadSpec workload = make_mediabench_workload("cjpeg");

  // 3. Configure the architecture: 8kB direct-mapped cache, 16B lines,
  //    M = 4 uniform banks, Probing (time-varying) re-indexing.
  const SimConfig config = paper_config(/*size_bytes=*/8192,
                                        /*line_bytes=*/16,
                                        /*num_banks=*/4);

  // 4. Run the three architectures the paper compares.
  const ThreeWayResult r =
      run_three_way(workload, config, aging, /*num_accesses=*/2'000'000);

  std::cout << "workload: " << workload.name << "\n"
            << "monolithic cache lifetime:        "
            << r.monolithic.lifetime_years() << " years\n"
            << "power-managed partition (LT0):    "
            << r.static_pm.lifetime_years() << " years\n"
            << "with dynamic re-indexing (LT):    "
            << r.reindexed.lifetime_years() << " years ("
            << r.extension_vs_monolithic() << "x the monolithic cache)\n"
            << "energy saving vs monolithic:      "
            << 100.0 * r.reindexed.energy_saving() << " %\n"
            << "hit rate (with periodic flushes): "
            << r.reindexed.cache_stats.hit_rate() << "\n";

  // 5. Per-bank detail: with re-indexing the idleness is uniform, so all
  //    banks age at the same rate — that is the whole trick.
  std::cout << "\nper-bank sleep residency (reindexed): ";
  for (const auto& b : r.reindexed.units)
    std::cout << b.sleep_residency << " ";
  std::cout << "\nper-bank sleep residency (static):    ";
  for (const auto& b : r.static_pm.units)
    std::cout << b.sleep_residency << " ";
  std::cout << "\n";
  return 0;
}
